package pipeline

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
)

var testDef = heatmap.Def{AddrBase: 0x1000, Size: 64 * 256, Gran: 256}

// patternMap mirrors the core package's synthetic normal MHMs.
func patternMap(rng *rand.Rand, phase int) *heatmap.HeatMap {
	m, err := heatmap.New(testDef)
	if err != nil {
		panic(err)
	}
	wa := []float64{1, 0.2, 0.6}[phase%3]
	for i := range m.Counts {
		base := 0.0
		if i < 16 {
			base = wa * 1000
		}
		if i >= 32 && i < 48 {
			base = (1 - wa) * 1000
		}
		if base > 0 {
			m.Counts[i] = uint32(base * (1 + 0.05*(2*rng.Float64()-1)))
		}
	}
	return m
}

func anomalyMap(rng *rand.Rand) *heatmap.HeatMap {
	m, _ := heatmap.New(testDef)
	for i := range m.Counts {
		base := 0.0
		if i < 16 {
			base = 450
		}
		if i >= 32 && i < 48 {
			base = 550
		}
		if base > 0 {
			m.Counts[i] = uint32(base * (1 + 0.05*(2*rng.Float64()-1)))
		}
	}
	return m
}

func trainDetector(t *testing.T, residual bool) (*core.Detector, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var train, calib []*heatmap.HeatMap
	for i := 0; i < 240; i++ {
		train = append(train, patternMap(rng, i))
	}
	for i := 0; i < 120; i++ {
		calib = append(calib, patternMap(rng, i))
	}
	cfg := core.Config{
		PCA: pca.Options{Components: 4},
		GMM: gmm.Options{Components: 3, Restarts: 2},
	}
	if residual {
		cfg.ResidualQuantiles = []float64{0.01}
	}
	det, err := core.Train(train, calib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return det, rng
}

func feed(t *testing.T, p *Pipeline, maps []*heatmap.HeatMap) {
	t.Helper()
	for i, m := range maps {
		m.Start = int64(i) * 10_000
		m.End = m.Start + 10_000
		if err := p.Process(m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPipelineDetectsAndRaises(t *testing.T) {
	det, rng := trainDetector(t, false)
	p, err := New(det, Config{Alarm: alarm.Config{RaiseAfter: 2, ClearAfter: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var maps []*heatmap.HeatMap
	for i := 0; i < 50; i++ {
		maps = append(maps, patternMap(rng, i))
	}
	for i := 0; i < 10; i++ {
		maps = append(maps, anomalyMap(rng))
	}
	feed(t, p, maps)

	recs := p.Records()
	if len(recs) != 60 {
		t.Fatalf("records = %d", len(recs))
	}
	if !p.Raised() {
		t.Error("alarm not raised during sustained anomaly")
	}
	rep := p.Analyze(50)
	if rep.DetectionLatencyIntervals < 0 || rep.DetectionLatencyIntervals > 3 {
		t.Errorf("latency = %d intervals", rep.DetectionLatencyIntervals)
	}
	if rep.FalseRaises != 0 {
		t.Errorf("false raises = %d", rep.FalseRaises)
	}
	if len(p.Alarms()) == 0 {
		t.Error("no alarm events recorded")
	}
	// Record bookkeeping.
	if recs[10].Index != 10 || recs[10].Start != 100_000 {
		t.Errorf("record 10 = %+v", recs[10])
	}
}

func TestPipelineBudget(t *testing.T) {
	det, rng := trainDetector(t, false)
	p, err := New(det, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var maps []*heatmap.HeatMap
	for i := 0; i < 30; i++ {
		maps = append(maps, patternMap(rng, i))
	}
	feed(t, p, maps)
	rep := p.Budget()
	if rep.Intervals != 30 || rep.IntervalMicros != 10_000 {
		t.Errorf("budget = %+v", rep)
	}
	if rep.MeanMicros <= 0 || rep.MaxMicros < rep.MeanMicros {
		t.Errorf("timing stats: %+v", rep)
	}
	// The §5.4 feasibility claim: analysis far cheaper than the interval.
	if rep.Overruns != 0 {
		t.Errorf("analysis overran the 10 ms budget %d times", rep.Overruns)
	}
	// Empty pipeline budget.
	empty, _ := New(det, Config{})
	if rep := empty.Budget(); rep.Intervals != 0 || rep.IntervalMicros != 0 {
		t.Errorf("empty budget = %+v", rep)
	}
}

func TestPipelineResidualMode(t *testing.T) {
	det, rng := trainDetector(t, true)
	p, err := New(det, Config{UseResidual: true, Alarm: alarm.Config{RaiseAfter: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Null-space anomaly: heat in untouched cells.
	m := patternMap(rng, 0)
	for i := 48; i < 64; i++ {
		m.Counts[i] = 900
	}
	feed(t, p, []*heatmap.HeatMap{m})
	recs := p.Records()
	if !recs[0].Anomalous {
		t.Error("residual pipeline missed null-space anomaly")
	}
	if recs[0].Residual <= 0 {
		t.Error("residual not recorded")
	}
}

func TestPipelineValidation(t *testing.T) {
	det, _ := trainDetector(t, false)
	if _, err := New(nil, Config{}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil detector: %v", err)
	}
	if _, err := New(det, Config{Quantile: 0.42}); !errors.Is(err, core.ErrUnknownQuantile) {
		t.Errorf("uncalibrated quantile: %v", err)
	}
	if _, err := New(det, Config{UseResidual: true}); !errors.Is(err, core.ErrUnknownQuantile) {
		t.Errorf("residual without calibration: %v", err)
	}
	if _, err := New(det, Config{Alarm: alarm.Config{RaiseAfter: -1}}); !errors.Is(err, alarm.ErrConfig) {
		t.Errorf("bad alarm config: %v", err)
	}
}

func TestPipelineRegionMismatch(t *testing.T) {
	det, _ := trainDetector(t, false)
	p, err := New(det, Config{})
	if err != nil {
		t.Fatal(err)
	}
	foreign, _ := heatmap.New(heatmap.Def{AddrBase: 0, Size: 512, Gran: 256})
	if err := p.Process(foreign); !errors.Is(err, core.ErrRegionMismatch) {
		t.Errorf("foreign region: %v", err)
	}
}
