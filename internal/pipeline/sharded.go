package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/score"
)

// ShardedConfig tunes the multi-stream scorer.
type ShardedConfig struct {
	// Shards is the worker count; default min(streams, GOMAXPROCS).
	Shards int
	// QueueDepth is the per-shard queue capacity (default 64). A full
	// queue blocks Submit — back-pressure, not drops: the monitor slows
	// rather than silently losing intervals.
	QueueDepth int
	// Quantile selects the calibrated threshold (default 0.01 = θ1).
	Quantile float64
	// Alarm configures per-stream debouncing (zero value = defaults).
	Alarm alarm.Config
	// Metrics, when non-nil, installs per-shard interval/anomaly
	// counters and analysis-latency histograms
	// (pipeline.shard<i>.intervals / .anomalous / .analysis_micros).
	Metrics *obs.Registry
}

// shardWorker is one worker's private state: a Scorer over the shared
// engine plus the widening buffer, so steady-state scoring never
// allocates no matter how many streams multiplex onto the shard.
type shardWorker struct {
	sc   *score.Scorer
	vbuf []float64

	intervals *obs.Counter
	anomalous *obs.Counter
	analysis  *obs.Histogram
}

// streamState is one monitored stream: its interval records and alarm
// runtime. Stream→shard affinity means exactly one worker writes here;
// the mutex only fences those writes against read-side Records/Alarms.
type streamState struct {
	mu      sync.Mutex
	records []IntervalRecord
	index   int
	rt      *alarm.Runtime
}

// workItem is one queued interval, dense or run-length (exactly one of
// m and sp is set).
type workItem struct {
	stream int
	m      *heatmap.HeatMap
	sp     *heatmap.Sparse
}

// Sharded scores N concurrent monitored streams over a fixed pool of
// shard workers, each owning a score.Scorer derived from the detector's
// fused engine. Streams are pinned to shards (stream mod shards) and
// each shard is a single goroutine draining a FIFO queue, so intervals
// of any one stream are always scored and recorded in submission order;
// scores are bit-identical to the serial Pipeline. Bounded queues give
// back-pressure: Submit blocks when a shard falls behind.
type Sharded struct {
	region  heatmap.Def
	theta   float64
	workers []*shardWorker
	chans   []chan workItem
	streams []*streamState

	mu     sync.RWMutex // fences Submit against Close
	closed bool
	wg     sync.WaitGroup
}

// NewSharded builds the sharded scorer for a fixed number of streams
// over a trained detector.
func NewSharded(det *core.Detector, streams int, cfg ShardedConfig) (*Sharded, error) {
	if det == nil {
		return nil, fmt.Errorf("pipeline: nil detector: %w", ErrConfig)
	}
	if streams <= 0 {
		return nil, fmt.Errorf("pipeline: %d streams: %w", streams, ErrConfig)
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.01
	}
	theta, err := det.Threshold(cfg.Quantile)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	eng, err := det.ScoreEngine()
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	l, _ := eng.Dim()
	if l != det.Region.Cells() {
		return nil, fmt.Errorf("pipeline: engine dimension %d, region cells %d: %w",
			l, det.Region.Cells(), ErrConfig)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > streams {
		shards = streams
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = 64
	}
	if depth < 0 {
		return nil, fmt.Errorf("pipeline: queue depth %d: %w", depth, ErrConfig)
	}

	s := &Sharded{
		region:  det.Region,
		theta:   theta,
		workers: make([]*shardWorker, shards),
		chans:   make([]chan workItem, shards),
		streams: make([]*streamState, streams),
	}
	for i := range s.streams {
		rt, err := alarm.NewRuntime(cfg.Alarm)
		if err != nil {
			return nil, err
		}
		s.streams[i] = &streamState{rt: rt}
	}
	for i := range s.workers {
		w := &shardWorker{sc: eng.NewScorer(), vbuf: make([]float64, l)}
		if cfg.Metrics != nil {
			w.intervals = cfg.Metrics.Counter(fmt.Sprintf("pipeline.shard%d.intervals", i))
			w.anomalous = cfg.Metrics.Counter(fmt.Sprintf("pipeline.shard%d.anomalous", i))
			w.analysis = cfg.Metrics.Histogram(fmt.Sprintf("pipeline.shard%d.analysis_micros", i), obs.LatencyBuckets)
		}
		s.workers[i] = w
		s.chans[i] = make(chan workItem, depth)
		s.wg.Add(1)
		go s.run(i)
	}
	return s, nil
}

// Streams and Shards report the configured topology.
func (s *Sharded) Streams() int { return len(s.streams) }
func (s *Sharded) Shards() int  { return len(s.workers) }

// Submit queues one completed MHM of a stream for scoring. It blocks
// when the stream's shard queue is full (back-pressure) and returns an
// error after Close or for a foreign region. Callers must not submit to
// the same stream from multiple goroutines if they need a meaningful
// per-stream order; distinct streams are free to submit concurrently.
func (s *Sharded) Submit(stream int, m *heatmap.HeatMap) error {
	if stream < 0 || stream >= len(s.streams) {
		return fmt.Errorf("pipeline: stream %d out of [0,%d): %w", stream, len(s.streams), ErrConfig)
	}
	if m.Def != s.region {
		return fmt.Errorf("pipeline: stream %d: %w", stream, core.ErrRegionMismatch)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return fmt.Errorf("pipeline: submit after close: %w", ErrConfig)
	}
	s.chans[stream%len(s.chans)] <- workItem{stream: stream, m: m}
	return nil
}

// SubmitSparse queues one completed interval in run-length form — the
// fused-path hand-off from memometer.Device.CollectSparse. The worker
// scores the runs directly (score.Scorer.ScoreSparse), bit-identical to
// Submit on the densified map, without widening into the shard's dense
// buffer. The caller must not reuse sp's backing arrays until the
// interval appears in Records; collect each interval into a fresh (or
// rotation-pooled) Sparse when feeding a pipeline.
func (s *Sharded) SubmitSparse(stream int, sp *heatmap.Sparse) error {
	if stream < 0 || stream >= len(s.streams) {
		return fmt.Errorf("pipeline: stream %d out of [0,%d): %w", stream, len(s.streams), ErrConfig)
	}
	if sp.Def != s.region {
		return fmt.Errorf("pipeline: stream %d: %w", stream, core.ErrRegionMismatch)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return fmt.Errorf("pipeline: submit after close: %w", ErrConfig)
	}
	s.chans[stream%len(s.chans)] <- workItem{stream: stream, sp: sp}
	return nil
}

// run is one shard worker: it drains the shard's FIFO queue, scoring
// each interval with the worker's private Scorer and appending to the
// owning stream's record in submission order.
func (s *Sharded) run(shard int) {
	defer s.wg.Done()
	w := s.workers[shard]
	for it := range s.chans[shard] {
		start := time.Now()
		var lp float64
		var err error
		ivStart, ivEnd := int64(0), int64(0)
		if it.sp != nil {
			lp, err = w.sc.ScoreSparse(it.sp.RunStart, it.sp.RunLen, it.sp.Counts)
			ivStart, ivEnd = it.sp.Start, it.sp.End
		} else {
			it.m.VectorInto(w.vbuf)
			lp, err = w.sc.Score(w.vbuf)
			ivStart, ivEnd = it.m.Start, it.m.End
		}
		if err != nil {
			// Unreachable: Submit pinned the region, so the vector length
			// always matches the engine, and CollectSparse-produced runs
			// satisfy ScoreSparse's invariants.
			panic("pipeline: sharded score: " + err.Error())
		}
		anomalous := lp < s.theta
		rec := IntervalRecord{
			Start:          ivStart,
			End:            ivEnd,
			LogDensity:     lp,
			Anomalous:      anomalous,
			AnalysisMicros: float64(time.Since(start).Nanoseconds()) / 1e3,
		}
		st := s.streams[it.stream]
		st.mu.Lock()
		rec.Index = st.index
		st.index++
		rec.Event = st.rt.Observe(anomalous, ivEnd)
		st.records = append(st.records, rec)
		st.mu.Unlock()

		w.intervals.Inc()
		if anomalous {
			w.anomalous.Inc()
		}
		w.analysis.Observe(rec.AnalysisMicros)
	}
}

// Records returns the analyzed intervals of one stream so far, in
// submission order.
func (s *Sharded) Records(stream int) ([]IntervalRecord, error) {
	if stream < 0 || stream >= len(s.streams) {
		return nil, fmt.Errorf("pipeline: stream %d out of [0,%d): %w", stream, len(s.streams), ErrConfig)
	}
	st := s.streams[stream]
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]IntervalRecord, len(st.records))
	copy(out, st.records)
	return out, nil
}

// Alarms returns one stream's alarm transitions so far.
func (s *Sharded) Alarms(stream int) ([]alarm.Event, error) {
	if stream < 0 || stream >= len(s.streams) {
		return nil, fmt.Errorf("pipeline: stream %d out of [0,%d): %w", stream, len(s.streams), ErrConfig)
	}
	st := s.streams[stream]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rt.Events(), nil
}

// Close drains the queues, stops the workers, and waits for them.
// Further Submit calls fail; Records and Alarms remain readable.
func (s *Sharded) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, ch := range s.chans {
		close(ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
