package pipeline

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
)

// streamSeries builds each stream's interval sequence: mostly normal
// maps with a burst of anomalies, timestamped so ordering is checkable.
func streamSeries(rng *rand.Rand, stream, n int) []*heatmap.HeatMap {
	maps := make([]*heatmap.HeatMap, n)
	for i := 0; i < n; i++ {
		var m *heatmap.HeatMap
		if i >= n/2 && i < n/2+10 {
			m = anomalyMap(rng)
		} else {
			m = patternMap(rng, stream+i)
		}
		m.Start = int64(i) * 1000
		m.End = m.Start + 1000
		maps[i] = m
	}
	return maps
}

// TestShardedMatchesSerial is the stress gate (run under -race in CI):
// several concurrent streams, hundreds of intervals each, scored by a
// sharded pool — every stream's records must come back in submission
// order with scores and verdicts bit-identical to a serial Pipeline fed
// the same intervals.
func TestShardedMatchesSerial(t *testing.T) {
	det, _ := trainDetector(t, false)

	const (
		streams   = 6
		intervals = 250
	)
	series := make([][]*heatmap.HeatMap, streams)
	for i := range series {
		series[i] = streamSeries(rand.New(rand.NewSource(int64(100+i))), i, intervals)
	}

	// Serial references, one fresh pipeline per stream.
	want := make([][]IntervalRecord, streams)
	for i, maps := range series {
		p, err := New(det, Config{})
		if err != nil {
			t.Fatal(err)
		}
		feed(t, p, maps)
		want[i] = p.Records()
	}

	sh, err := NewSharded(det, streams, ShardedConfig{Shards: 3, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Streams() != streams || sh.Shards() != 3 {
		t.Fatalf("topology (%d, %d)", sh.Streams(), sh.Shards())
	}
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, m := range series[i] {
				if err := sh.Submit(i, m); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	sh.Close()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}

	for i := 0; i < streams; i++ {
		got, err := sh.Records(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != intervals {
			t.Fatalf("stream %d: %d records, want %d", i, len(got), intervals)
		}
		for j, rec := range got {
			if rec.Index != j {
				t.Fatalf("stream %d: record %d has index %d — order broken", i, j, rec.Index)
			}
			ref := want[i][j]
			if rec.Start != ref.Start || rec.End != ref.End {
				t.Fatalf("stream %d interval %d: bounds (%d,%d), want (%d,%d)",
					i, j, rec.Start, rec.End, ref.Start, ref.End)
			}
			if math.Float64bits(rec.LogDensity) != math.Float64bits(ref.LogDensity) {
				t.Fatalf("stream %d interval %d: sharded density %v, serial %v",
					i, j, rec.LogDensity, ref.LogDensity)
			}
			if rec.Anomalous != ref.Anomalous {
				t.Fatalf("stream %d interval %d: verdict %v, serial %v",
					i, j, rec.Anomalous, ref.Anomalous)
			}
		}
		// The per-stream alarm runtimes see the same verdict sequence, so
		// the alarm transitions must line up too.
		alarms, err := sh.Alarms(i)
		if err != nil {
			t.Fatal(err)
		}
		var refAlarms []int
		for _, r := range want[i] {
			if r.Event != nil {
				refAlarms = append(refAlarms, r.Index)
			}
		}
		var gotAlarms []int
		for _, r := range got {
			if r.Event != nil {
				gotAlarms = append(gotAlarms, r.Index)
			}
		}
		if !reflect.DeepEqual(gotAlarms, refAlarms) {
			t.Fatalf("stream %d: alarm transitions at %v, serial %v", i, gotAlarms, refAlarms)
		}
		if len(alarms) == 0 && len(refAlarms) > 0 {
			t.Fatalf("stream %d: alarm runtime recorded no events", i)
		}
	}
}

// TestShardedValidation covers configuration and submission errors.
func TestShardedValidation(t *testing.T) {
	det, rng := trainDetector(t, false)
	if _, err := NewSharded(nil, 1, ShardedConfig{}); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := NewSharded(det, 0, ShardedConfig{}); err == nil {
		t.Error("zero streams accepted")
	}
	if _, err := NewSharded(det, 1, ShardedConfig{Quantile: 0.42}); err == nil {
		t.Error("uncalibrated quantile accepted")
	}
	// Zero means default, but negative is a configuration error — it must
	// not silently fall back like the unset value does.
	if _, err := NewSharded(det, 1, ShardedConfig{QueueDepth: -1}); err == nil {
		t.Error("negative queue depth accepted")
	}

	sh, err := NewSharded(det, 2, ShardedConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != 2 {
		t.Errorf("shards not capped at streams: %d", sh.Shards())
	}
	if err := sh.Submit(2, patternMap(rng, 0)); err == nil {
		t.Error("out-of-range stream accepted")
	}
	foreign, _ := heatmap.New(heatmap.Def{AddrBase: 0, Size: 1024, Gran: 256})
	if err := sh.Submit(0, foreign); err == nil {
		t.Error("foreign region accepted")
	}
	sh.Close()
	sh.Close() // idempotent
	if err := sh.Submit(0, patternMap(rng, 0)); err == nil {
		t.Error("submit after close accepted")
	}
	if _, err := sh.Records(0); err != nil {
		t.Errorf("records after close: %v", err)
	}
}

// TestParallelTrainingDeterministic: the Parallel training options that
// experiments now default to must reproduce the serial model exactly —
// same eigenmemories, same mixture, same thresholds — so flipping the
// flag can never shift calibrated behaviour.
func TestParallelTrainingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var train, calib []*heatmap.HeatMap
	for i := 0; i < 200; i++ {
		train = append(train, patternMap(rng, i))
	}
	for i := 0; i < 100; i++ {
		calib = append(calib, patternMap(rng, i))
	}
	mk := func(parallel bool) *core.Detector {
		d, err := core.Train(train, calib, core.Config{
			PCA: pca.Options{Components: 4, Parallel: parallel},
			GMM: gmm.Options{Components: 3, Restarts: 2, Parallel: parallel},
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	serial, parallel := mk(false), mk(true)

	if !reflect.DeepEqual(serial.Thresholds, parallel.Thresholds) {
		t.Fatalf("thresholds differ: %+v vs %+v", serial.Thresholds, parallel.Thresholds)
	}
	for i := 0; i < 50; i++ {
		m := patternMap(rng, i)
		a, err := serial.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("map %d: serial model %v, parallel model %v", i, a, b)
		}
	}
}

// TestSubmitSparseMatchesSubmit: the run-length submission path must
// reproduce the dense path bit for bit — same densities, same verdicts,
// same alarm transitions — since it feeds the same scoring engine
// through ScoreSparse instead of VectorInto+Score.
func TestSubmitSparseMatchesSubmit(t *testing.T) {
	det, _ := trainDetector(t, false)
	const streams, intervals = 3, 120
	series := make([][]*heatmap.HeatMap, streams)
	for i := range series {
		series[i] = streamSeries(rand.New(rand.NewSource(int64(300+i))), i, intervals)
	}

	score := func(sparse bool) [][]IntervalRecord {
		sh, err := NewSharded(det, streams, ShardedConfig{Shards: 2, QueueDepth: 8})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < streams; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for _, m := range series[i] {
					if sparse {
						if err := sh.SubmitSparse(i, m.Sparsify(nil)); err != nil {
							t.Error(err)
							return
						}
					} else if err := sh.Submit(i, m); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		sh.Close()
		out := make([][]IntervalRecord, streams)
		for i := range out {
			recs, err := sh.Records(i)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = recs
		}
		return out
	}
	dense, sparse := score(false), score(true)

	for i := 0; i < streams; i++ {
		if len(sparse[i]) != len(dense[i]) {
			t.Fatalf("stream %d: %d sparse records, %d dense", i, len(sparse[i]), len(dense[i]))
		}
		for j := range dense[i] {
			d, sp := dense[i][j], sparse[i][j]
			if sp.Start != d.Start || sp.End != d.End {
				t.Fatalf("stream %d interval %d: sparse bounds (%d,%d), dense (%d,%d)",
					i, j, sp.Start, sp.End, d.Start, d.End)
			}
			if math.Float64bits(sp.LogDensity) != math.Float64bits(d.LogDensity) {
				t.Fatalf("stream %d interval %d: sparse density %v, dense %v",
					i, j, sp.LogDensity, d.LogDensity)
			}
			if sp.Anomalous != d.Anomalous || (sp.Event != nil) != (d.Event != nil) {
				t.Fatalf("stream %d interval %d: sparse verdict/alarm (%v,%v), dense (%v,%v)",
					i, j, sp.Anomalous, sp.Event != nil, d.Anomalous, d.Event != nil)
			}
		}
	}
}

// TestSubmitSparseValidation covers the sparse-path submission errors.
func TestSubmitSparseValidation(t *testing.T) {
	det, rng := trainDetector(t, false)
	sh, err := NewSharded(det, 1, ShardedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sp := patternMap(rng, 0).Sparsify(nil)
	if err := sh.SubmitSparse(1, sp); err == nil {
		t.Error("out-of-range stream accepted")
	}
	foreign, _ := heatmap.New(heatmap.Def{AddrBase: 0, Size: 1024, Gran: 256})
	if err := sh.SubmitSparse(0, foreign.Sparsify(nil)); err == nil {
		t.Error("foreign region accepted")
	}
	sh.Close()
	if err := sh.SubmitSparse(0, sp); err == nil {
		t.Error("submit after close accepted")
	}
}
