package pipeline

import (
	"testing"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

// TestOnlineEndToEnd runs the complete deployment loop: train offline,
// then monitor a live attacked system with per-interval analysis and
// debounced alarms — the paper's architecture end to end.
func TestOnlineEndToEnd(t *testing.T) {
	img, err := kernelmap.NewImage(1)
	if err != nil {
		t.Fatal(err)
	}
	region := heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 2048}

	collect := func(seed int64, micros int64) []*heatmap.HeatMap {
		tasks, err := workload.PaperTaskSet(img)
		if err != nil {
			t.Fatal(err)
		}
		s, err := securecore.NewSession(img, tasks, securecore.SessionConfig{
			Region: region, NoiseSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		maps, err := s.Run(micros)
		if err != nil {
			t.Fatal(err)
		}
		return maps
	}
	var train []*heatmap.HeatMap
	for seed := int64(0); seed < 3; seed++ {
		train = append(train, collect(seed, 1_000_000)...)
	}
	calib := collect(50, 1_000_000)
	det, err := core.Train(train, calib, core.Config{
		PCA: pca.Options{VarianceFraction: 0.9999, MaxComponents: 16},
		GMM: gmm.Options{Components: 5, Restarts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	p, err := New(det, Config{Alarm: alarm.Config{RaiseAfter: 2, ClearAfter: 5}})
	if err != nil {
		t.Fatal(err)
	}

	// Live monitoring of an attacked run: qsort launched at t = 1 s
	// (interval 100).
	const launch = 1_000_000 + 5_000
	sc := &attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: launch}
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Transform(tasks); err != nil {
		t.Fatal(err)
	}
	session, err := securecore.NewSession(img, tasks, securecore.SessionConfig{
		Region:    region,
		NoiseSeed: 777,
		OnMHM:     p.Process,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Install(session.Scheduler, session.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := session.Run(2_000_000); err != nil {
		t.Fatal(err)
	}

	if got := len(p.Records()); got != 200 {
		t.Fatalf("analyzed %d intervals, want 200", got)
	}
	rep := p.Analyze(100)
	if rep.DetectionLatencyIntervals < 0 {
		t.Fatal("attack never raised an alarm")
	}
	if rep.DetectionLatencyIntervals > 10 {
		t.Errorf("detection latency %d intervals (%d ms)",
			rep.DetectionLatencyIntervals, rep.DetectionLatencyIntervals*10)
	}
	if rep.FalseRaises > 1 {
		t.Errorf("false raises before the attack: %d", rep.FalseRaises)
	}
	// The first alarm's simulated time is after the launch.
	for _, ev := range p.Alarms() {
		if ev.Raised && ev.Time <= launch {
			t.Errorf("alarm at simulated time %d before launch %d", ev.Time, launch)
		}
		break
	}
	// Feasibility: online analysis is far below the 10 ms budget.
	budget := p.Budget()
	if budget.Overruns != 0 {
		t.Errorf("online analysis overran the interval %d times (max %.0f µs)",
			budget.Overruns, budget.MaxMicros)
	}
}
