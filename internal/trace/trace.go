// Package trace defines the memory-access event stream flowing from the
// simulated monitored core to the Memometer, plus buffering and
// serialization so traces can be captured once and replayed through many
// detector configurations.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Access is one snooped address-bus event. The hardware model supports
// bursts: Count unit fetches starting at Addr, all attributed to Addr's
// cell (bursts in this simulator never straddle cell boundaries; the
// kernel model splits them beforehand).
type Access struct {
	// Time is the simulation time of the event in microseconds.
	Time int64
	// Addr is the (virtual) address being fetched.
	Addr uint64
	// Count is the number of fetches in the burst; zero-count events are
	// ignored by consumers.
	Count uint32
}

// Ring is a fixed-capacity ring buffer of Access events with
// overwrite-oldest semantics, mirroring a bounded hardware capture
// buffer. Not safe for concurrent use.
type Ring struct {
	buf   []Access
	head  int // index of oldest element
	count int
	drops uint64
}

// NewRing returns a ring that retains the most recent capacity events.
func NewRing(capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: NewRing: capacity %d must be positive", capacity)
	}
	return &Ring{buf: make([]Access, capacity)}, nil
}

// Push appends an event, overwriting the oldest one when full.
func (r *Ring) Push(a Access) {
	if r.count < len(r.buf) {
		r.buf[(r.head+r.count)%len(r.buf)] = a
		r.count++
		return
	}
	r.buf[r.head] = a
	r.head = (r.head + 1) % len(r.buf)
	r.drops++
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return r.count }

// Drops returns how many events have been overwritten.
func (r *Ring) Drops() uint64 { return r.drops }

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Access {
	out := make([]Access, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Reset empties the ring without releasing storage.
func (r *Ring) Reset() {
	r.head, r.count, r.drops = 0, 0, 0
}

// binaryMagic guards the trace file framing.
const binaryMagic = uint32(0x4d484d54) // "MHMT"

// ErrBadTrace is returned when a serialized trace is malformed.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Writer serializes Access events to a compact binary stream.
type Writer struct {
	w     *bufio.Writer
	count uint64
	begun bool
}

// NewWriter wraps w for trace output.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one event.
func (tw *Writer) Write(a Access) error {
	if !tw.begun {
		if err := binary.Write(tw.w, binary.LittleEndian, binaryMagic); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		tw.begun = true
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], uint64(a.Time))
	binary.LittleEndian.PutUint64(rec[8:16], a.Addr)
	binary.LittleEndian.PutUint32(rec[16:20], a.Count)
	if _, err := tw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	tw.count++
	return nil
}

// Count returns the number of events written.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered output; call once after the last Write.
func (tw *Writer) Flush() error {
	if !tw.begun {
		// An empty trace still carries the header so readers can
		// distinguish "empty" from "not a trace".
		if err := binary.Write(tw.w, binary.LittleEndian, binaryMagic); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		tw.begun = true
	}
	return tw.w.Flush()
}

// recordSize is the on-wire size of one serialized Access.
const recordSize = 20

// Reader deserializes a stream produced by Writer.
type Reader struct {
	r     *bufio.Reader
	begun bool
	batch []byte // ReadBatch decode buffer, grown once to the batch size
}

// NewReader wraps r for trace input.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// header consumes and validates the stream magic on first use.
func (tr *Reader) header() error {
	if tr.begun {
		return nil
	}
	var magic uint32
	if err := binary.Read(tr.r, binary.LittleEndian, &magic); err != nil {
		if errors.Is(err, io.EOF) {
			return fmt.Errorf("trace: missing header: %w", ErrBadTrace)
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("trace: truncated header: %w", ErrBadTrace)
		}
		return err
	}
	if magic != binaryMagic {
		return fmt.Errorf("trace: bad magic %#x: %w", magic, ErrBadTrace)
	}
	tr.begun = true
	return nil
}

// Read returns the next event, or io.EOF at end of stream.
func (tr *Reader) Read() (Access, error) {
	if err := tr.header(); err != nil {
		return Access{}, err
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(tr.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Access{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Access{}, fmt.Errorf("trace: truncated record: %w", ErrBadTrace)
		}
		return Access{}, err
	}
	return Access{
		Time:  int64(binary.LittleEndian.Uint64(rec[0:8])),
		Addr:  binary.LittleEndian.Uint64(rec[8:16]),
		Count: binary.LittleEndian.Uint32(rec[16:20]),
	}, nil
}

// ReadBatch fills dst with the next events, pulling one buffered block
// from the stream and decoding every complete record in it — one
// io.ReadFull per batch instead of one per record. It returns the number
// of events decoded into dst. A full batch returns (len(dst), nil); a
// clean end of stream returns (0, io.EOF); a short final block whose
// length is a whole number of records returns those events with a nil
// error, and the following call reports io.EOF. A torn trailing record
// returns the events decoded before it together with an error wrapping
// ErrBadTrace. The decoded events are identical to len(dst) sequential
// Read calls.
func (tr *Reader) ReadBatch(dst []Access) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if err := tr.header(); err != nil {
		return 0, err
	}
	need := len(dst) * recordSize
	if cap(tr.batch) < need {
		tr.batch = make([]byte, need)
	}
	buf := tr.batch[:need]
	nb, err := io.ReadFull(tr.r, buf)
	k := nb / recordSize
	for i := 0; i < k; i++ {
		rec := buf[i*recordSize : (i+1)*recordSize]
		dst[i] = Access{
			Time:  int64(binary.LittleEndian.Uint64(rec[0:8])),
			Addr:  binary.LittleEndian.Uint64(rec[8:16]),
			Count: binary.LittleEndian.Uint32(rec[16:20]),
		}
	}
	switch {
	case err == nil:
		return k, nil
	case errors.Is(err, io.EOF):
		return 0, io.EOF
	case errors.Is(err, io.ErrUnexpectedEOF):
		if nb%recordSize != 0 {
			return k, fmt.Errorf("trace: truncated record: %w", ErrBadTrace)
		}
		return k, nil
	default:
		return k, err
	}
}

// ReadAll drains the stream into a slice.
func (tr *Reader) ReadAll() ([]Access, error) {
	var out []Access
	for {
		a, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
}
