package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("empty Len = %d", r.Len())
	}
	r.Push(Access{Time: 1})
	r.Push(Access{Time: 2})
	if got := r.Snapshot(); len(got) != 2 || got[0].Time != 1 || got[1].Time != 2 {
		t.Errorf("Snapshot = %v", got)
	}
	if r.Drops() != 0 {
		t.Errorf("Drops = %d", r.Drops())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r, _ := NewRing(3)
	for i := int64(1); i <= 5; i++ {
		r.Push(Access{Time: i})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Len = %d, want 3", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].Time != want {
			t.Errorf("Snapshot[%d].Time = %d, want %d", i, got[i].Time, want)
		}
	}
	if r.Drops() != 2 {
		t.Errorf("Drops = %d, want 2", r.Drops())
	}
	r.Reset()
	if r.Len() != 0 || r.Drops() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestRingRejectsBadCapacity(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewRing(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	events := make([]Access, 500)
	for i := range events {
		events[i] = Access{
			Time:  rng.Int63n(1 << 40),
			Addr:  0xC0008000 + uint64(rng.Intn(1<<21)),
			Count: uint32(rng.Intn(1000)),
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 500 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty trace yielded %d events", len(got))
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5})).ReadAll()
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("garbage: err = %v, want ErrBadTrace", err)
	}
	_, err = NewReader(bytes.NewReader(nil)).ReadAll()
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("empty stream: err = %v, want ErrBadTrace", err)
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Time: 1, Addr: 2, Count: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	r := NewReader(bytes.NewReader(b[:len(b)-5]))
	if _, err := r.Read(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated: err = %v, want ErrBadTrace", err)
	}
}

func TestReaderEOFAfterLast(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Time: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestRoundTripQuickProperty(t *testing.T) {
	// Property: any event sequence survives serialization untouched.
	f := func(times []int64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		events := make([]Access, len(times))
		for i, tm := range times {
			events[i] = Access{Time: tm, Addr: rng.Uint64(), Count: rng.Uint32()}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			if w.Write(e) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
