package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r, err := NewRing(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("empty Len = %d", r.Len())
	}
	r.Push(Access{Time: 1})
	r.Push(Access{Time: 2})
	if got := r.Snapshot(); len(got) != 2 || got[0].Time != 1 || got[1].Time != 2 {
		t.Errorf("Snapshot = %v", got)
	}
	if r.Drops() != 0 {
		t.Errorf("Drops = %d", r.Drops())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r, _ := NewRing(3)
	for i := int64(1); i <= 5; i++ {
		r.Push(Access{Time: i})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Len = %d, want 3", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].Time != want {
			t.Errorf("Snapshot[%d].Time = %d, want %d", i, got[i].Time, want)
		}
	}
	if r.Drops() != 2 {
		t.Errorf("Drops = %d, want 2", r.Drops())
	}
	r.Reset()
	if r.Len() != 0 || r.Drops() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestRingRejectsBadCapacity(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewRing(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	events := make([]Access, 500)
	for i := range events {
		events[i] = Access{
			Time:  rng.Int63n(1 << 40),
			Addr:  0xC0008000 + uint64(rng.Intn(1<<21)),
			Count: uint32(rng.Intn(1000)),
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 500 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty trace yielded %d events", len(got))
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5})).ReadAll()
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("garbage: err = %v, want ErrBadTrace", err)
	}
	_, err = NewReader(bytes.NewReader(nil)).ReadAll()
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("empty stream: err = %v, want ErrBadTrace", err)
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Time: 1, Addr: 2, Count: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	r := NewReader(bytes.NewReader(b[:len(b)-5]))
	if _, err := r.Read(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated: err = %v, want ErrBadTrace", err)
	}
}

func TestReaderEOFAfterLast(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Time: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestRoundTripQuickProperty(t *testing.T) {
	// Property: any event sequence survives serialization untouched.
	f := func(times []int64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		events := make([]Access, len(times))
		for i, tm := range times {
			events[i] = Access{Time: tm, Addr: rng.Uint64(), Count: rng.Uint32()}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			if w.Write(e) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	events := make([]Access, 500)
	for i := range events {
		events[i] = Access{
			Time:  rng.Int63n(1 << 40),
			Addr:  0xC0008000 + uint64(rng.Intn(1<<21)),
			Count: uint32(rng.Intn(1000)),
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, batch := range []int{1, 7, 64, 500, 1000} {
		r := NewReader(bytes.NewReader(raw))
		dst := make([]Access, batch)
		var got []Access
		for {
			n, err := r.ReadBatch(dst)
			got = append(got, dst[:n]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("batch=%d: %v", batch, err)
			}
			if n == 0 {
				t.Fatalf("batch=%d: zero progress without EOF", batch)
			}
		}
		if len(got) != len(events) {
			t.Fatalf("batch=%d: read %d events, want %d", batch, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("batch=%d: event %d = %+v, want %+v", batch, i, got[i], events[i])
			}
		}
		if n, err := r.ReadBatch(dst); n != 0 || !errors.Is(err, io.EOF) {
			t.Fatalf("batch=%d: after drain: n=%d err=%v, want 0, io.EOF", batch, n, err)
		}
	}
}

func TestReadBatchTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := int64(0); i < 3; i++ {
		if err := w.Write(Access{Time: i, Addr: uint64(i), Count: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	r := NewReader(bytes.NewReader(raw[:len(raw)-5])) // torn third record
	dst := make([]Access, 8)
	n, err := r.ReadBatch(dst)
	if n != 2 {
		t.Fatalf("decoded %d events before the torn record, want 2", n)
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
}

func TestReadBatchEmptyDst(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Time: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if n, err := r.ReadBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty dst: n=%d err=%v, want 0, nil", n, err)
	}
	// The stream is untouched; the event is still there.
	if n, err := r.ReadBatch(make([]Access, 4)); n != 1 || err != nil {
		t.Fatalf("after empty dst: n=%d err=%v, want 1, nil", n, err)
	}
}
