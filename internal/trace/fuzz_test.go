package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader hardens the trace deserializer: arbitrary bytes must never
// panic, and whatever parses must re-serialize identically.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Access{Time: 1, Addr: 0xC0008000, Count: 3})
	_ = w.Write(Access{Time: 2, Addr: 0xC0009000, Count: 7})
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x4d, 0x48, 0x4d}) // magic bytes reversed

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var events []Access
		for {
			a, err := r.Read()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("reject without ErrBadTrace: %v", err)
				}
				return // malformed input rejected; fine
			}
			events = append(events, a)
			if len(events) > 1<<16 {
				t.Fatal("unbounded parse") // 20-byte records cap this
			}
		}
		// Round trip.
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, e := range events {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewReader(&out).ReadAll()
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(got) != len(events) {
			t.Fatalf("round trip changed count: %d vs %d", len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("event %d changed", i)
			}
		}
	})
}

// FuzzTraceReader pins the Reader's error contract: over an in-memory
// stream (no transient I/O failures) every Read outcome is a valid
// event, io.EOF at a clean record boundary, or an error wrapping
// ErrBadTrace. Nothing else may escape and nothing may panic —
// truncated headers (1–3 bytes) and torn records included.
func FuzzTraceReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := int64(0); i < 3; i++ {
		_ = w.Write(Access{Time: i * 10, Addr: 0xC0008000 + uint64(i)*4096, Count: uint32(i + 1)})
	}
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	// Truncations at every prefix length through the header and the
	// first record, plus a torn tail on the full stream.
	for n := 0; n <= 24 && n < len(valid); n++ {
		f.Add(valid[:n])
	}
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)-7]) // torn tail mid-record for the batch path
	f.Add([]byte("MHMT"))       // wrong byte order for the magic

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var events []Access
		var terminal error
		for i := 0; ; i++ {
			a, err := r.Read()
			if err == nil {
				if i > len(data)/20+1 {
					t.Fatalf("parsed more records than the input can hold")
				}
				events = append(events, a)
				continue
			}
			if errors.Is(err, io.EOF) || errors.Is(err, ErrBadTrace) {
				terminal = err
				break
			}
			t.Fatalf("Read returned error outside the contract: %v", err)
		}
		// Cross-check: the batched path must decode the identical event
		// sequence and end in the same terminal class as record-at-a-time
		// reads, for every batch size.
		for _, batch := range []int{1, 3, 64} {
			br := NewReader(bytes.NewReader(data))
			dst := make([]Access, batch)
			var got []Access
			var bTerminal error
			for {
				n, err := br.ReadBatch(dst)
				got = append(got, dst[:n]...)
				if err == nil {
					continue
				}
				if errors.Is(err, io.EOF) || errors.Is(err, ErrBadTrace) {
					bTerminal = err
					break
				}
				t.Fatalf("ReadBatch returned error outside the contract: %v", err)
			}
			if len(got) != len(events) {
				t.Fatalf("batch=%d decoded %d events, Read decoded %d", batch, len(got), len(events))
			}
			for i := range events {
				if got[i] != events[i] {
					t.Fatalf("batch=%d event %d = %+v, Read saw %+v", batch, i, got[i], events[i])
				}
			}
			if errors.Is(terminal, ErrBadTrace) != errors.Is(bTerminal, ErrBadTrace) {
				t.Fatalf("batch=%d terminal %v, Read terminal %v", batch, bTerminal, terminal)
			}
		}
	})
}
