package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader hardens the trace deserializer: arbitrary bytes must never
// panic, and whatever parses must re-serialize identically.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(Access{Time: 1, Addr: 0xC0008000, Count: 3})
	_ = w.Write(Access{Time: 2, Addr: 0xC0009000, Count: 7})
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x4d, 0x48, 0x4d}) // magic bytes reversed

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var events []Access
		for {
			a, err := r.Read()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return // malformed input rejected; fine
			}
			events = append(events, a)
			if len(events) > 1<<16 {
				t.Fatal("unbounded parse") // 20-byte records cap this
			}
		}
		// Round trip.
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, e := range events {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewReader(&out).ReadAll()
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(got) != len(events) {
			t.Fatalf("round trip changed count: %d vs %d", len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("event %d changed", i)
			}
		}
	})
}
