package baseline

import (
	"fmt"
	"math"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/stats"
)

// EntropyDetector is the second comparison point the paper's related
// work suggests (Gu et al., adapted from packet-class distributions to
// memory behaviour): it ignores volume entirely and scores each
// interval by the KL divergence of its cell *distribution* against the
// normal average distribution. Stronger than volume monitoring —
// composition changes register — but unlike the MHM detector it has no
// notion of distinct normal modes: legitimate phase-to-phase variation
// and attacks land on the same axis.
type EntropyDetector struct {
	// Profile is the smoothed normal cell distribution (sums to 1).
	Profile []float64
	// Theta is the detection threshold on the KL score.
	Theta float64
	// Epsilon is the smoothing mass protecting against log(0).
	Epsilon float64
}

// TrainEntropy fits the profile on normal MHMs and sets Theta to the
// (1−p)-quantile of their scores (expected false-positive rate p,
// default 0.01).
func TrainEntropy(maps []*heatmap.HeatMap, p float64) (*EntropyDetector, error) {
	if len(maps) < 2 {
		return nil, fmt.Errorf("baseline: %d training MHMs: %w", len(maps), ErrTraining)
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	l := len(maps[0].Counts)
	profile := make([]float64, l)
	for _, m := range maps {
		if len(m.Counts) != l {
			return nil, fmt.Errorf("baseline: inconsistent cell counts: %w", ErrTraining)
		}
		total := float64(m.Total())
		if total == 0 {
			continue
		}
		for i, c := range m.Counts {
			profile[i] += float64(c) / total
		}
	}
	const eps = 1e-9
	sum := 0.0
	for i := range profile {
		profile[i] = profile[i]/float64(len(maps)) + eps
		sum += profile[i]
	}
	for i := range profile {
		profile[i] /= sum
	}
	d := &EntropyDetector{Profile: profile, Epsilon: eps}
	scores := make([]float64, len(maps))
	for i, m := range maps {
		s, err := d.Score(m)
		if err != nil {
			return nil, err
		}
		scores[i] = s
	}
	theta, err := stats.Quantile(scores, 1-p)
	if err != nil {
		return nil, err
	}
	d.Theta = theta
	return d, nil
}

// Score returns KL(interval distribution ‖ profile) in nats.
func (d *EntropyDetector) Score(m *heatmap.HeatMap) (float64, error) {
	if len(m.Counts) != len(d.Profile) {
		return 0, fmt.Errorf("baseline: map has %d cells, profile %d: %w",
			len(m.Counts), len(d.Profile), ErrTraining)
	}
	total := float64(m.Total())
	if total == 0 {
		// An empty interval is maximally surprising relative to any
		// non-degenerate profile; report the profile's entropy.
		h := 0.0
		for _, q := range d.Profile {
			h -= q * math.Log(q)
		}
		return h, nil
	}
	kl := 0.0
	for i, c := range m.Counts {
		if c == 0 {
			continue
		}
		pi := float64(c) / total
		kl += pi * math.Log(pi/d.Profile[i])
	}
	return kl, nil
}

// Classify flags the interval when its KL score exceeds Theta.
func (d *EntropyDetector) Classify(m *heatmap.HeatMap) (anomalous bool, score float64, err error) {
	s, err := d.Score(m)
	if err != nil {
		return false, 0, err
	}
	return s > d.Theta, s, nil
}

// ClassifySeries applies Classify to a series.
func (d *EntropyDetector) ClassifySeries(maps []*heatmap.HeatMap) (flags []bool, scores []float64, err error) {
	flags = make([]bool, len(maps))
	scores = make([]float64, len(maps))
	for i, m := range maps {
		flags[i], scores[i], err = d.Classify(m)
		if err != nil {
			return nil, nil, fmt.Errorf("baseline: interval %d: %w", i, err)
		}
	}
	return flags, scores, nil
}
