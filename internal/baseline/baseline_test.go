package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
)

var testDef = heatmap.Def{AddrBase: 0, Size: 0x1000, Gran: 0x100}

func volumeMap(t *testing.T, total uint32) *heatmap.HeatMap {
	t.Helper()
	m, err := heatmap.New(testDef)
	if err != nil {
		t.Fatal(err)
	}
	m.Counts[0] = total
	return m
}

func trainSet(t *testing.T, rng *rand.Rand, n int, mean, spread float64) []*heatmap.HeatMap {
	t.Helper()
	out := make([]*heatmap.HeatMap, n)
	for i := range out {
		out[i] = volumeMap(t, uint32(mean+spread*rng.NormFloat64()))
	}
	return out
}

func TestTrainVolumeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := TrainVolume(trainSet(t, rng, 500, 10000, 200), 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean < 9900 || d.Mean > 10100 {
		t.Errorf("Mean = %g", d.Mean)
	}
	if d.Std < 150 || d.Std > 250 {
		t.Errorf("Std = %g", d.Std)
	}
	if d.K != 3 {
		t.Errorf("K = %g", d.K)
	}
}

func TestDefaultK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := TrainVolume(trainSet(t, rng, 10, 1000, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.K != 3 {
		t.Errorf("default K = %g, want 3", d.K)
	}
}

func TestTrainVolumeValidation(t *testing.T) {
	if _, err := TrainVolume(nil, 3); !errors.Is(err, ErrTraining) {
		t.Errorf("empty: %v", err)
	}
	if _, err := TrainVolume([]*heatmap.HeatMap{volumeMap(t, 1)}, 3); !errors.Is(err, ErrTraining) {
		t.Errorf("single: %v", err)
	}
}

func TestClassifyCatchesLoudAndMissesQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, err := TrainVolume(trainSet(t, rng, 500, 10000, 200), 3)
	if err != nil {
		t.Fatal(err)
	}
	// The insmod-style spike is caught.
	if anom, total := d.Classify(volumeMap(t, 60000)); !anom || total != 60000 {
		t.Errorf("spike: anom=%v total=%d", anom, total)
	}
	// A volume-preserving attack is invisible — Fig. 9's point: same
	// total, different composition.
	stealth, err := heatmap.New(testDef)
	if err != nil {
		t.Fatal(err)
	}
	stealth.Counts[7] = 10000 // different cell, same volume
	if anom, _ := d.Classify(stealth); anom {
		t.Error("volume detector flagged a volume-preserving anomaly; it should be blind to it")
	}
	// Normal traffic passes.
	flagged := 0
	for i := 0; i < 200; i++ {
		if anom, _ := d.Classify(volumeMap(t, uint32(10000+200*rng.NormFloat64()))); anom {
			flagged++
		}
	}
	if flagged > 5 {
		t.Errorf("flagged %d/200 normal intervals", flagged)
	}
}

func TestClassifySeries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := TrainVolume(trainSet(t, rng, 100, 5000, 100), 3)
	if err != nil {
		t.Fatal(err)
	}
	maps := []*heatmap.HeatMap{
		volumeMap(t, 5000),
		volumeMap(t, 50000),
		volumeMap(t, 4990),
	}
	flags, totals := d.ClassifySeries(maps)
	if flags[0] || !flags[1] || flags[2] {
		t.Errorf("flags = %v", flags)
	}
	if totals[1] != 50000 {
		t.Errorf("totals = %v", totals)
	}
}

func TestLowVolumeAlsoFlagged(t *testing.T) {
	// The band is two-sided: a dead task (traffic drop) is an anomaly too.
	rng := rand.New(rand.NewSource(5))
	d, err := TrainVolume(trainSet(t, rng, 300, 10000, 100), 3)
	if err != nil {
		t.Fatal(err)
	}
	if anom, _ := d.Classify(volumeMap(t, 1000)); !anom {
		t.Error("traffic collapse not flagged")
	}
}
