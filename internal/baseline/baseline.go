// Package baseline implements the comparison detector implicit in the
// paper's Fig. 9: monitoring only the memory traffic *volume* of the
// monitored region. It catches loud events (module loading) but is blind
// to attacks that preserve total traffic — the contrast that motivates
// heat maps.
package baseline

import (
	"errors"
	"fmt"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/stats"
)

// ErrTraining wraps invalid training input.
var ErrTraining = errors.New("baseline: invalid training input")

// VolumeDetector flags intervals whose total access count leaves the
// mean ± K·σ band of normal traffic.
type VolumeDetector struct {
	// Mean and Std summarize normal per-interval traffic.
	Mean, Std float64
	// K is the band half-width in standard deviations.
	K float64
}

// TrainVolume fits the detector on normal MHMs. k defaults to 3 when
// non-positive.
func TrainVolume(maps []*heatmap.HeatMap, k float64) (*VolumeDetector, error) {
	if len(maps) < 2 {
		return nil, fmt.Errorf("baseline: %d training MHMs: %w", len(maps), ErrTraining)
	}
	if k <= 0 {
		k = 3
	}
	totals := make([]float64, len(maps))
	for i, m := range maps {
		totals[i] = float64(m.Total())
	}
	mean, err := stats.Mean(totals)
	if err != nil {
		return nil, err
	}
	std, err := stats.StdDev(totals)
	if err != nil {
		return nil, err
	}
	return &VolumeDetector{Mean: mean, Std: std, K: k}, nil
}

// Classify reports whether the interval's volume is outside the band,
// along with the raw total (the Fig. 9 series value).
func (d *VolumeDetector) Classify(m *heatmap.HeatMap) (anomalous bool, total uint64) {
	total = m.Total()
	dev := float64(total) - d.Mean
	if dev < 0 {
		dev = -dev
	}
	return dev > d.K*d.Std, total
}

// ClassifySeries applies Classify to a series.
func (d *VolumeDetector) ClassifySeries(maps []*heatmap.HeatMap) (flags []bool, totals []uint64) {
	flags = make([]bool, len(maps))
	totals = make([]uint64, len(maps))
	for i, m := range maps {
		flags[i], totals[i] = d.Classify(m)
	}
	return flags, totals
}
