package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
)

// distMap builds an MHM distributing `total` accesses over cells
// according to weights.
func distMap(t *testing.T, total float64, weights []float64) *heatmap.HeatMap {
	t.Helper()
	m, err := heatmap.New(testDef) // 16 cells
	if err != nil {
		t.Fatal(err)
	}
	wsum := 0.0
	for _, w := range weights {
		wsum += w
	}
	for i, w := range weights {
		if i >= len(m.Counts) {
			break
		}
		m.Counts[i] = uint32(total * w / wsum)
	}
	return m
}

func normalWeights(rng *rand.Rand) []float64 {
	// Stable distribution with small noise: 40/30/20/10 over 4 cells.
	base := []float64{4, 3, 2, 1}
	out := make([]float64, len(base))
	for i, b := range base {
		out[i] = b * (1 + 0.03*(2*rng.Float64()-1))
	}
	return out
}

func trainEntropy(t *testing.T) (*EntropyDetector, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var maps []*heatmap.HeatMap
	for i := 0; i < 300; i++ {
		maps = append(maps, distMap(t, 10_000, normalWeights(rng)))
	}
	d, err := TrainEntropy(maps, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return d, rng
}

func TestEntropyProfileNormalized(t *testing.T) {
	d, _ := trainEntropy(t)
	sum := 0.0
	for _, q := range d.Profile {
		if q <= 0 {
			t.Errorf("profile entry %g not positive (smoothing failed)", q)
		}
		sum += q
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("profile sums to %g", sum)
	}
	if d.Theta <= 0 {
		t.Errorf("Theta = %g", d.Theta)
	}
}

func TestEntropyCatchesVolumePreservingShift(t *testing.T) {
	// The case the volume detector is blind to: identical total, moved
	// between cells.
	d, rng := trainEntropy(t)
	shifted := distMap(t, 10_000, []float64{1, 2, 3, 4}) // reversed mix
	anom, score, err := d.Classify(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if !anom {
		t.Errorf("volume-preserving composition shift not flagged (score %g, θ %g)", score, d.Theta)
	}
	// Normal data passes at roughly the configured rate.
	flagged := 0
	for i := 0; i < 300; i++ {
		if a, _, err := d.Classify(distMap(t, 10_000, normalWeights(rng))); err != nil {
			t.Fatal(err)
		} else if a {
			flagged++
		}
	}
	if rate := float64(flagged) / 300; rate > 0.05 {
		t.Errorf("entropy FP rate %.3f", rate)
	}
}

func TestEntropyIgnoresPureVolumeChange(t *testing.T) {
	// Doubling every cell changes volume, not distribution: the KL
	// detector must NOT flag it (that is the volume detector's job).
	d, rng := trainEntropy(t)
	big := distMap(t, 20_000, normalWeights(rng))
	if anom, _, err := d.Classify(big); err != nil {
		t.Fatal(err)
	} else if anom {
		t.Error("entropy detector flagged a pure volume change")
	}
}

func TestEntropyZeroTotalInterval(t *testing.T) {
	d, _ := trainEntropy(t)
	empty, err := heatmap.New(testDef)
	if err != nil {
		t.Fatal(err)
	}
	anom, score, err := d.Classify(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !anom || score <= 0 {
		t.Errorf("empty interval: anom=%v score=%g", anom, score)
	}
}

func TestEntropyValidation(t *testing.T) {
	if _, err := TrainEntropy(nil, 0.01); !errors.Is(err, ErrTraining) {
		t.Errorf("empty: %v", err)
	}
	d, _ := trainEntropy(t)
	other, err := heatmap.New(heatmap.Def{AddrBase: 0, Size: 0x100, Gran: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(other); !errors.Is(err, ErrTraining) {
		t.Errorf("mismatched cells: %v", err)
	}
	if _, _, err := d.ClassifySeries([]*heatmap.HeatMap{other}); !errors.Is(err, ErrTraining) {
		t.Errorf("series mismatch: %v", err)
	}
}
