package core

import (
	"errors"
	"math"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
)

// TestNewDetectorMatchesTrained reassembles a trained detector's models
// through NewDetector and checks the fused scoring path produces
// bit-identical densities and the thresholds survive (sorted).
func TestNewDetectorMatchesTrained(t *testing.T) {
	d, rng := trainTestDetector(t)
	// Hand thresholds over in reverse order to exercise the sort.
	rev := make([]Threshold, len(d.Thresholds))
	for i, th := range d.Thresholds {
		rev[len(rev)-1-i] = th
	}
	re, err := NewDetector(d.Region, d.PCA, d.GMM, rev)
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range d.Thresholds {
		if re.Thresholds[i] != th {
			t.Fatalf("threshold[%d] = %+v, want %+v", i, re.Thresholds[i], th)
		}
	}
	for trial := 0; trial < 20; trial++ {
		m := patternMap(rng, trial)
		a, err := d.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := re.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("trial %d: trained %v vs reassembled %v", trial, a, b)
		}
	}
}

// TestNewDetectorValidation checks nil models, region mismatch and
// mixture-dimension mismatch are rejected.
func TestNewDetectorValidation(t *testing.T) {
	d, _ := trainTestDetector(t)
	if _, err := NewDetector(d.Region, nil, d.GMM, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil PCA: %v", err)
	}
	if _, err := NewDetector(d.Region, d.PCA, nil, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil GMM: %v", err)
	}
	small := heatmap.Def{AddrBase: 0x1000, Size: 32 * 256, Gran: 256}
	if _, err := NewDetector(small, d.PCA, d.GMM, nil); !errors.Is(err, ErrRegionMismatch) {
		t.Fatalf("region mismatch: %v", err)
	}
}

// TestNewDetectorEmptyThresholds allows a threshold-free detector for
// raw-density consumers, and Threshold then reports unknown quantiles.
func TestNewDetectorEmptyThresholds(t *testing.T) {
	d, rng := trainTestDetector(t)
	re, err := NewDetector(d.Region, d.PCA, d.GMM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Thresholds) != 0 {
		t.Fatalf("%d thresholds, want 0", len(re.Thresholds))
	}
	if _, err := re.Threshold(0.01); err == nil {
		t.Fatal("Threshold on threshold-free detector succeeded")
	}
	if _, err := re.LogDensity(patternMap(rng, 0)); err != nil {
		t.Fatal(err)
	}
}
