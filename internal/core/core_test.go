package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
)

var testDef = heatmap.Def{AddrBase: 0x1000, Size: 64 * 256, Gran: 256} // 64 cells

// patternMap builds an MHM as a noisy mixture of two base patterns,
// mimicking intervals composed of primary activities.
func patternMap(rng *rand.Rand, phase int) *heatmap.HeatMap {
	m, err := heatmap.New(testDef)
	if err != nil {
		panic(err)
	}
	// Pattern A: hot cells 0-15; pattern B: hot cells 32-47. Phase picks
	// the blend, like different schedule phases.
	wa := []float64{1, 0.2, 0.6}[phase%3]
	wb := 1 - wa
	for i := range m.Counts {
		base := 0.0
		if i < 16 {
			base = wa * 1000
		}
		if i >= 32 && i < 48 {
			base = wb * 1000
		}
		if base > 0 {
			noise := 1 + 0.05*(2*rng.Float64()-1)
			m.Counts[i] = uint32(base * noise)
		}
	}
	return m
}

// anomalyMap blends the base patterns with a weight no normal phase
// produces — the paper's detection mechanism: anomalies have abnormal
// weights of the primary activities. (An anomaly confined to cells with
// zero training variance would be invisible to the plain PCA projection;
// the residual-based extension covers that case.)
func anomalyMap(rng *rand.Rand) *heatmap.HeatMap {
	m, err := heatmap.New(testDef)
	if err != nil {
		panic(err)
	}
	const wa = 0.45 // between the 0.2 and 0.6 clusters
	for i := range m.Counts {
		base := 0.0
		if i < 16 {
			base = wa * 1000
		}
		if i >= 32 && i < 48 {
			base = (1 - wa) * 1000
		}
		if base > 0 {
			noise := 1 + 0.05*(2*rng.Float64()-1)
			m.Counts[i] = uint32(base * noise)
		}
	}
	return m
}

func trainTestDetector(t *testing.T) (*Detector, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var train, calib []*heatmap.HeatMap
	for i := 0; i < 240; i++ {
		train = append(train, patternMap(rng, i))
	}
	for i := 0; i < 120; i++ {
		calib = append(calib, patternMap(rng, i))
	}
	d, err := Train(train, calib, Config{
		PCA: pca.Options{Components: 4},
		GMM: gmm.Options{Components: 3, Restarts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, rng
}

func TestTrainAndClassifyNormalVsAnomalous(t *testing.T) {
	d, rng := trainTestDetector(t)
	l, lp := d.Dim()
	if l != 64 || lp != 4 {
		t.Errorf("Dim = (%d, %d)", l, lp)
	}
	// Normal MHMs pass at θ1 almost always.
	flagged := 0
	const nNormal = 200
	for i := 0; i < nNormal; i++ {
		anom, _, err := d.Classify(patternMap(rng, i), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if anom {
			flagged++
		}
	}
	if rate := float64(flagged) / nNormal; rate > 0.05 {
		t.Errorf("false positive rate %.3f at θ1; expected ≈0.01", rate)
	}
	// Anomalies are flagged.
	missed := 0
	const nAnom = 50
	for i := 0; i < nAnom; i++ {
		anom, _, err := d.Classify(anomalyMap(rng), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if !anom {
			missed++
		}
	}
	if missed > 2 {
		t.Errorf("missed %d/%d anomalies", missed, nAnom)
	}
}

func TestThresholdsOrderedAndMonotone(t *testing.T) {
	d, _ := trainTestDetector(t)
	if len(d.Thresholds) != 2 {
		t.Fatalf("thresholds = %+v", d.Thresholds)
	}
	if d.Thresholds[0].P != 0.005 || d.Thresholds[1].P != 0.01 {
		t.Errorf("quantiles = %+v, want paper defaults 0.005/0.01", d.Thresholds)
	}
	// θ0.5 ≤ θ1: a lower quantile is a more permissive bound.
	if d.Thresholds[0].Theta > d.Thresholds[1].Theta {
		t.Errorf("θ0.5 = %g > θ1 = %g", d.Thresholds[0].Theta, d.Thresholds[1].Theta)
	}
	if _, err := d.Threshold(0.25); !errors.Is(err, ErrUnknownQuantile) {
		t.Errorf("uncalibrated quantile: %v", err)
	}
}

func TestCalibratedFalsePositiveRateTracksP(t *testing.T) {
	// On fresh normal data the flag rate at θ_p should be near p.
	d, rng := trainTestDetector(t)
	var maps []*heatmap.HeatMap
	for i := 0; i < 600; i++ {
		maps = append(maps, patternMap(rng, i))
	}
	verdicts, err := d.ClassifySeries(maps)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.005, 0.01} {
		rate := FalsePositiveRate(verdicts, p)
		if rate > 5*p+0.01 {
			t.Errorf("FP rate %.4f at p=%g", rate, p)
		}
	}
	if FalsePositiveRate(nil, 0.01) != 0 {
		t.Error("empty verdicts should give rate 0")
	}
}

func TestAnomalousDensityLowerThanNormal(t *testing.T) {
	d, rng := trainTestDetector(t)
	var normalSum, anomSum float64
	for i := 0; i < 30; i++ {
		lp, err := d.LogDensity(patternMap(rng, i))
		if err != nil {
			t.Fatal(err)
		}
		normalSum += lp
		la, err := d.LogDensity(anomalyMap(rng))
		if err != nil {
			t.Fatal(err)
		}
		anomSum += la
	}
	if anomSum/30 >= normalSum/30-1 {
		t.Errorf("anomaly mean density %.1f not clearly below normal %.1f", anomSum/30, normalSum/30)
	}
}

func TestRegionMismatchRejected(t *testing.T) {
	d, _ := trainTestDetector(t)
	other, err := heatmap.New(heatmap.Def{AddrBase: 0, Size: 1024, Gran: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.LogDensity(other); !errors.Is(err, ErrRegionMismatch) {
		t.Errorf("foreign region: %v", err)
	}
	if _, _, err := d.Classify(other, 0.01); !errors.Is(err, ErrRegionMismatch) {
		t.Errorf("Classify foreign region: %v", err)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	one := []*heatmap.HeatMap{patternMap(rng, 0)}
	many := []*heatmap.HeatMap{patternMap(rng, 0), patternMap(rng, 1), patternMap(rng, 2)}
	if _, err := Train(one, many, Config{}); !errors.Is(err, ErrConfig) {
		t.Errorf("tiny training set: %v", err)
	}
	if _, err := Train(many, nil, Config{}); !errors.Is(err, ErrConfig) {
		t.Errorf("empty calibration: %v", err)
	}
	if _, err := Train(many, many, Config{Quantiles: []float64{2}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad quantile: %v", err)
	}
	mixed := append([]*heatmap.HeatMap{}, many...)
	foreign, _ := heatmap.New(heatmap.Def{AddrBase: 0, Size: 1024, Gran: 256})
	mixed = append(mixed, foreign)
	if _, err := Train(mixed, many, Config{}); !errors.Is(err, ErrRegionMismatch) {
		t.Errorf("mixed regions: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, rng := trainTestDetector(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Region != d.Region {
		t.Errorf("region changed: %+v", d2.Region)
	}
	if len(d2.Thresholds) != len(d.Thresholds) {
		t.Fatalf("thresholds lost")
	}
	for i := 0; i < 10; i++ {
		m := patternMap(rng, i)
		a, err := d.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d2.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("density %g vs %g after round trip", a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"region":{},"pca":{},"gmm":[]}`)); err == nil {
		t.Error("malformed accepted")
	}
}

func TestClassifySeriesVerdictFields(t *testing.T) {
	d, rng := trainTestDetector(t)
	m := patternMap(rng, 0)
	m.Start, m.End = 50000, 60000
	verdicts, err := d.ClassifySeries([]*heatmap.HeatMap{m})
	if err != nil {
		t.Fatal(err)
	}
	v := verdicts[0]
	if v.Index != 0 || v.Start != 50000 || v.End != 60000 {
		t.Errorf("verdict = %+v", v)
	}
	if len(v.Anomalous) != 2 {
		t.Errorf("verdict thresholds = %v", v.Anomalous)
	}
}

// TestTrainWorkersBitIdentical pins the training engine's determinism
// contract end to end at the detector level: PCA build, batch
// projection, every EM restart and the threshold calibration must all
// yield the same detector bit for bit at every worker count.
func TestTrainWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var trainSet, calib []*heatmap.HeatMap
	for i := 0; i < 120; i++ {
		trainSet = append(trainSet, patternMap(rng, i))
	}
	for i := 0; i < 60; i++ {
		calib = append(calib, patternMap(rng, i))
	}
	cfg := Config{
		PCA: pca.Options{Components: 4},
		GMM: gmm.Options{Components: 3, Restarts: 3},
	}
	base, err := Train(trainSet, calib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		for _, parallel := range []bool{false, true} {
			c := cfg
			c.Workers = workers
			c.GMM.Parallel = parallel
			d, err := Train(trainSet, calib, c)
			if err != nil {
				t.Fatalf("workers=%d parallel=%v: %v", workers, parallel, err)
			}
			if len(d.Thresholds) != len(base.Thresholds) {
				t.Fatalf("workers=%d: threshold counts differ", workers)
			}
			for i, th := range base.Thresholds {
				if math.Float64bits(d.Thresholds[i].Theta) != math.Float64bits(th.Theta) {
					t.Fatalf("workers=%d parallel=%v: θ_%g = %v, want %v",
						workers, parallel, th.P, d.Thresholds[i].Theta, th.Theta)
				}
			}
			// Scores on fresh maps must agree bit for bit too.
			probe := patternMap(rng, 1)
			want, err := base.LogDensity(probe)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.LogDensity(probe)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("workers=%d parallel=%v: log density %v, want %v", workers, parallel, got, want)
			}
		}
	}
}
