package core

import (
	"errors"
	"fmt"
	"io"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/score"
	"github.com/memheatmap/mhm/internal/trace"
)

// IntervalScore is one fused-path result: the interval bounds, its
// mixture log density, and how many region cells were touched.
type IntervalScore struct {
	// Start and End bound the interval in simulation microseconds.
	Start, End int64
	// LogDensity is the mixture log density, bit-identical to
	// Detector.LogDensity on the interval's dense MHM.
	LogDensity float64
	// NNZ is the number of occupied cells in the interval.
	NNZ int
}

// TraceScorer is the fused zero-copy ingest→snoop→score path: it pumps
// a trace through a private Memometer in batches
// (trace.Reader.ReadBatch → memometer.Device.SnoopBatch), collects each
// completed interval in run-length form (Device.CollectSparse), and
// scores the runs directly (score.Scorer.ScoreSparse) — no intermediate
// dense HeatMap clone and no []float64 materialization anywhere between
// the trace block and the log density. All working storage is owned by
// the TraceScorer and reused, so the steady state is allocation-free.
//
// A TraceScorer serves one goroutine at a time. For multi-stream
// fan-out, give each stream its own (they share the detector's
// immutable engine), or feed sparse intervals to pipeline.Sharded via
// SubmitSparse.
type TraceScorer struct {
	dev *memometer.Device
	sc  *score.Scorer
	buf []trace.Access
	sp  heatmap.Sparse
}

// NewTraceScorer builds the fused path over d's trained model. The
// private device monitors d.Region with the given interval;
// batch (default 1024) sizes the ReadBatch staging buffer.
func (d *Detector) NewTraceScorer(intervalMicros int64, batch int) (*TraceScorer, error) {
	eng, err := d.ScoreEngine()
	if err != nil {
		return nil, fmt.Errorf("core: trace scorer: %w", err)
	}
	if l, _ := eng.Dim(); l != d.Region.Cells() {
		return nil, fmt.Errorf("core: engine dimension %d, region cells %d: %w",
			l, d.Region.Cells(), ErrConfig)
	}
	if batch <= 0 {
		batch = 1024
	}
	dev := memometer.New()
	if err := dev.Configure(memometer.Config{Region: d.Region, IntervalMicros: intervalMicros}); err != nil {
		return nil, fmt.Errorf("core: trace scorer: %w", err)
	}
	return &TraceScorer{
		dev: dev,
		sc:  eng.NewScorer(),
		buf: make([]trace.Access, batch),
	}, nil
}

// Device exposes the private Memometer for stats inspection
// (snooped/accepted/overruns). Driving it directly while Run or Feed is
// in flight corrupts the interval stream.
func (ts *TraceScorer) Device() *memometer.Device { return ts.dev }

// Run pumps the whole trace through the fused path, invoking emit for
// every completed interval in time order. A trailing partial interval
// is left recording (see FlushAt). An emit error aborts the run and is
// returned verbatim.
func (ts *TraceScorer) Run(r *trace.Reader, emit func(IntervalScore) error) error {
	for {
		n, err := r.ReadBatch(ts.buf)
		if ferr := ts.Feed(ts.buf[:n], emit); ferr != nil {
			return ferr
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("core: trace scorer: %w", err)
		}
	}
}

// Feed pushes one time-ordered event batch through the fused path,
// scoring every interval the batch completes. Callers streaming events
// from a live source use Feed directly; Run wraps it over a trace
// reader.
func (ts *TraceScorer) Feed(events []trace.Access, emit func(IntervalScore) error) error {
	off := 0
	for off < len(events) {
		k, err := ts.dev.SnoopBatch(events[off:])
		off += k
		if err != nil {
			return fmt.Errorf("core: trace scorer: %w", err)
		}
		if ts.dev.HasPending() {
			if err := ts.scorePending(emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlushAt advances the device clock to t, scoring any intervals whose
// boundaries that crossing completes — the way a run drains trailing
// intervals once the event stream ends.
func (ts *TraceScorer) FlushAt(t int64, emit func(IntervalScore) error) error {
	if err := ts.dev.Tick(t); err != nil {
		return fmt.Errorf("core: trace scorer: %w", err)
	}
	for ts.dev.HasPending() {
		if err := ts.scorePending(emit); err != nil {
			return err
		}
	}
	return nil
}

// scorePending collects the pending interval in run-length form,
// scores the runs, and emits the result.
func (ts *TraceScorer) scorePending(emit func(IntervalScore) error) error {
	if err := ts.dev.CollectSparse(&ts.sp); err != nil {
		return fmt.Errorf("core: trace scorer: %w", err)
	}
	lp, err := ts.sc.ScoreSparse(ts.sp.RunStart, ts.sp.RunLen, ts.sp.Counts)
	if err != nil {
		return fmt.Errorf("core: trace scorer: %w", err)
	}
	return emit(IntervalScore{
		Start:      ts.sp.Start,
		End:        ts.sp.End,
		LogDensity: lp,
		NNZ:        ts.sp.NNZ(),
	})
}
