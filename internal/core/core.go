// Package core assembles the paper's contribution: training a normal
// memory-behaviour model from memory heat maps (eigenmemory PCA + GMM)
// and classifying new MHMs against p-quantile density thresholds — the
// analysis the secure core performs each monitoring interval.
package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/stats"
	"github.com/memheatmap/mhm/internal/train"
)

// Errors of the detector pipeline.
var (
	// ErrConfig wraps invalid training configuration or inputs.
	ErrConfig = errors.New("core: invalid configuration")
	// ErrRegionMismatch is returned when an MHM's definition differs from
	// the one the detector was trained on.
	ErrRegionMismatch = errors.New("core: heat map region differs from trained region")
	// ErrUnknownQuantile is returned when a threshold is requested for an
	// uncalibrated quantile.
	ErrUnknownQuantile = errors.New("core: threshold quantile not calibrated")
)

// Config tunes training. The zero value reproduces the paper's setup
// except for fields that need data-dependent defaults.
type Config struct {
	// PCA options; by default the smallest L' explaining 99.99% of
	// variance is chosen, as in the paper (§5.2).
	PCA pca.Options
	// GMM options; Components defaults to the paper's J = 5 and Restarts
	// to the paper's 10.
	GMM gmm.Options
	// Quantiles lists the p values to calibrate thresholds for; default
	// {0.005, 0.01} = θ0.5 and θ1 from the paper.
	Quantiles []float64
	// ResidualQuantiles enables the residual extension (not in the
	// paper; the eigenfaces "distance from face space" companion): for
	// each p, an MHM is also anomalous when its reconstruction RMS
	// exceeds the (1−p)-quantile of calibration residuals. This catches
	// anomalies confined to cells with no training variance, which the
	// projection alone cannot see. Empty disables the extension.
	ResidualQuantiles []float64
	// Workers bounds the goroutines the training engine uses in every
	// stage — the PCA mean/Φ build, each EM restart, and the batch
	// projection of training vectors. It seeds PCA.Workers and
	// GMM.Workers when those are unset. Trained detectors are
	// bit-identical for every worker count; zero means serial.
	Workers int
}

func (c *Config) fill() error {
	if c.GMM.Components == 0 {
		c.GMM.Components = 5
	}
	if c.GMM.Restarts == 0 {
		c.GMM.Restarts = 10
	}
	if c.Workers > 0 {
		if c.PCA.Workers == 0 {
			c.PCA.Workers = c.Workers
		}
		if c.GMM.Workers == 0 {
			c.GMM.Workers = c.Workers
		}
	}
	if len(c.Quantiles) == 0 {
		c.Quantiles = []float64{0.005, 0.01}
	}
	for _, p := range c.Quantiles {
		if p <= 0 || p >= 1 {
			return fmt.Errorf("core: quantile %g out of (0,1): %w", p, ErrConfig)
		}
	}
	for _, p := range c.ResidualQuantiles {
		if p <= 0 || p >= 1 {
			return fmt.Errorf("core: residual quantile %g out of (0,1): %w", p, ErrConfig)
		}
	}
	return nil
}

// Threshold is one calibrated decision boundary: an MHM whose log
// density falls below Theta is anomalous at expected false-positive
// rate P.
type Threshold struct {
	P     float64 `json:"p"`
	Theta float64 `json:"theta"`
}

// Detector is a trained memory-behaviour model.
type Detector struct {
	// Region is the heat-map definition the model expects.
	Region heatmap.Def
	// PCA holds the eigenmemories; GMM the mixture over reduced MHMs.
	PCA *pca.Model
	GMM *gmm.Model
	// Thresholds are sorted by P ascending.
	Thresholds []Threshold
	// ResidualThresholds (sorted by P ascending) hold the residual
	// extension's upper bounds: an MHM whose reconstruction RMS exceeds
	// Theta is anomalous at expected false-positive rate P. Empty when
	// the extension is disabled.
	ResidualThresholds []Threshold

	// Per-stage latency histograms (nil unless Instrument was called);
	// uninstrumented scoring pays one nil check per stage.
	projHist  *obs.Histogram
	scoreHist *obs.Histogram

	// scoring is the fused engine + pooled scratch (see scoring.go). A
	// pointer so Detector values stay copyable; nil (hand-assembled
	// detectors) falls back to the allocating staged path.
	scoring *scoring
}

// Instrument installs per-stage latency histograms on the detector:
// core.project_micros times the eigenmemory projection (Eq. 1) and
// core.score_micros the mixture density evaluation (Eq. 2). Passing a
// nil registry uninstalls instrumentation. Not safe to call while
// another goroutine is scoring.
func (d *Detector) Instrument(r *obs.Registry) {
	d.projHist = r.Histogram("core.project_micros", obs.LatencyBuckets)
	d.scoreHist = r.Histogram("core.score_micros", obs.LatencyBuckets)
}

// Train learns a detector from a training set of normal MHMs and a
// separate calibration set (also normal) used to place the θ_p
// thresholds, mirroring the paper's two-phase §5.2 procedure.
func Train(trainSet, calib []*heatmap.HeatMap, cfg Config) (*Detector, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(trainSet) < 2 {
		return nil, fmt.Errorf("core: %d training MHMs: %w", len(trainSet), ErrConfig)
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("core: empty calibration set: %w", ErrConfig)
	}
	region := trainSet[0].Def
	for i, m := range trainSet {
		if m.Def != region {
			return nil, fmt.Errorf("core: training MHM %d: %w", i, ErrRegionMismatch)
		}
	}
	vectors, err := heatmap.PackVectors(trainSet)
	if err != nil {
		return nil, fmt.Errorf("core: training set: %w", err)
	}
	pcaModel, err := pca.Train(vectors, cfg.PCA)
	if err != nil {
		return nil, fmt.Errorf("core: eigenmemory training: %w", err)
	}
	reduced, err := projectAll(pcaModel, vectors, cfg.Workers)
	if err != nil {
		return nil, err
	}
	gmmModel, err := gmm.Train(reduced, cfg.GMM)
	if err != nil {
		return nil, fmt.Errorf("core: GMM training: %w", err)
	}

	d := &Detector{Region: region, PCA: pcaModel, GMM: gmmModel}
	d.scoring = newScoring(region.Cells(), pcaModel, gmmModel)

	// Calibrate thresholds on the held-out normal set, batched through
	// the fused engine.
	for i, m := range calib {
		if m.Def != region {
			return nil, fmt.Errorf("core: calibration MHM %d: %w", i, ErrRegionMismatch)
		}
	}
	calibVecs, err := heatmap.PackVectors(calib)
	if err != nil {
		return nil, fmt.Errorf("core: calibration set: %w", err)
	}
	densities := make([]float64, len(calib))
	if err := d.scoreVectors(densities, calibVecs); err != nil {
		return nil, fmt.Errorf("core: calibration: %w", err)
	}
	for _, p := range cfg.Quantiles {
		theta, err := stats.Quantile(densities, p)
		if err != nil {
			return nil, err
		}
		d.Thresholds = append(d.Thresholds, Threshold{P: p, Theta: theta})
	}
	sort.Slice(d.Thresholds, func(i, j int) bool { return d.Thresholds[i].P < d.Thresholds[j].P })

	if len(cfg.ResidualQuantiles) > 0 {
		residuals := make([]float64, len(calib))
		for i, m := range calib {
			r, err := d.Residual(m)
			if err != nil {
				return nil, fmt.Errorf("core: residual calibration MHM %d: %w", i, err)
			}
			residuals[i] = r
		}
		for _, p := range cfg.ResidualQuantiles {
			theta, err := stats.Quantile(residuals, 1-p)
			if err != nil {
				return nil, err
			}
			d.ResidualThresholds = append(d.ResidualThresholds, Threshold{P: p, Theta: theta})
		}
		sort.Slice(d.ResidualThresholds, func(i, j int) bool {
			return d.ResidualThresholds[i].P < d.ResidualThresholds[j].P
		})
	}
	return d, nil
}

// NewDetector assembles a detector from already-trained models with the
// fused scoring runtime installed — the constructor behind the refresh
// loop, which re-derives its models incrementally instead of calling
// Train. Thresholds are the caller's (typically recalibrated on a
// sliding held-out window) and are sorted by P here; they may be empty
// when only raw densities are needed. The models are referenced, not
// copied, and must not be mutated afterwards.
func NewDetector(region heatmap.Def, pcaModel *pca.Model, gmmModel *gmm.Model, thresholds []Threshold) (*Detector, error) {
	if pcaModel == nil || gmmModel == nil {
		return nil, fmt.Errorf("core: NewDetector: nil model: %w", ErrConfig)
	}
	l, lp := pcaModel.Dim()
	if l != region.Cells() {
		return nil, fmt.Errorf("core: NewDetector: %d eigenmemory dims for a %d-cell region: %w", l, region.Cells(), ErrRegionMismatch)
	}
	if d := gmmModel.Dim(); d != lp {
		return nil, fmt.Errorf("core: NewDetector: mixture dim %d, basis %d: %w", d, lp, ErrConfig)
	}
	d := &Detector{Region: region, PCA: pcaModel, GMM: gmmModel}
	if len(thresholds) > 0 {
		d.Thresholds = append([]Threshold(nil), thresholds...)
		sort.Slice(d.Thresholds, func(i, j int) bool { return d.Thresholds[i].P < d.Thresholds[j].P })
	}
	d.scoring = newScoring(region.Cells(), pcaModel, gmmModel)
	if d.scoring == nil {
		return nil, fmt.Errorf("core: NewDetector: models do not fuse (covariance not SPD?): %w", ErrConfig)
	}
	return d, nil
}

// projChunk is the work unit of the batch projection: vectors per
// training-engine chunk.
const projChunk = 16

// projectAll projects the training vectors into eigenmemory weights —
// pca.Model.ProjectAll with a single contiguous result backing and the
// chunks spread over the engine's workers. Each vector's projection is
// independent, so the result is identical for every worker count.
func projectAll(m *pca.Model, vectors [][]float64, workers int) ([][]float64, error) {
	_, lp := m.Dim()
	flat := make([]float64, len(vectors)*lp)
	out := make([][]float64, len(vectors))
	errs := make([]error, train.ChunkCount(len(vectors), projChunk))
	train.Chunks(len(vectors), projChunk, workers, func(lo, hi, idx int) {
		for i := lo; i < hi; i++ {
			w := flat[i*lp : (i+1)*lp : (i+1)*lp]
			if err := m.ProjectInto(w, vectors[i]); err != nil {
				errs[idx] = fmt.Errorf("core: projecting MHM %d: %w", i, err)
				return
			}
			out[i] = w
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Residual returns the MHM's reconstruction RMS error — its distance
// from the learned memory subspace. With a scoring runtime (detectors
// from Train or Load) the per-call path is allocation-free.
func (d *Detector) Residual(m *heatmap.HeatMap) (float64, error) {
	if m.Def != d.Region {
		return 0, fmt.Errorf("core: got %+v, trained on %+v: %w", m.Def, d.Region, ErrRegionMismatch)
	}
	if rt := d.scoring; rt != nil {
		s := rt.pool.Get().(*detScratch)
		defer rt.pool.Put(s)
		m.VectorInto(s.vbuf)
		return d.PCA.ReconstructionErrorInto(s.w, s.rec, s.vbuf)
	}
	return d.PCA.ReconstructionError(m.Vector())
}

// ResidualThreshold returns the residual bound for a calibrated quantile.
func (d *Detector) ResidualThreshold(p float64) (float64, error) {
	for _, th := range d.ResidualThresholds {
		if th.P == p {
			return th.Theta, nil
		}
	}
	return 0, fmt.Errorf("core: residual p=%g: %w", p, ErrUnknownQuantile)
}

// ClassifyWithResidual combines the paper's density test with the
// residual extension: anomalous when the log density falls below θ_p OR
// the reconstruction residual exceeds the residual bound at p.
func (d *Detector) ClassifyWithResidual(m *heatmap.HeatMap, p float64) (anomalous bool, logDensity, residual float64, err error) {
	theta, err := d.Threshold(p)
	if err != nil {
		return false, 0, 0, err
	}
	rTheta, err := d.ResidualThreshold(p)
	if err != nil {
		return false, 0, 0, err
	}
	lp, err := d.LogDensity(m)
	if err != nil {
		return false, 0, 0, err
	}
	r, err := d.Residual(m)
	if err != nil {
		return false, 0, 0, err
	}
	return lp < theta || r > rTheta, lp, r, nil
}

// Dim returns (L, L'), the original and reduced dimensionalities.
func (d *Detector) Dim() (int, int) { return d.PCA.Dim() }

// LogDensity scores one MHM: mean-shift, project onto the eigenmemories,
// evaluate the mixture log density (the y-axis of the paper's Figs.
// 7/8/10).
func (d *Detector) LogDensity(m *heatmap.HeatMap) (float64, error) {
	if m.Def != d.Region {
		return 0, fmt.Errorf("core: got %+v, trained on %+v: %w", m.Def, d.Region, ErrRegionMismatch)
	}
	rt := d.scoring
	if rt == nil {
		return d.LogDensityVector(m.Vector())
	}
	s := rt.pool.Get().(*detScratch)
	defer rt.pool.Put(s)
	m.VectorInto(s.vbuf)
	return d.scoreVector(s, s.vbuf)
}

// LogDensityVector scores a raw MHM vector (length L). With a scoring
// runtime (detectors from Train or Load) this is allocation-free and
// safe for concurrent use; scores are bit-identical either way.
func (d *Detector) LogDensityVector(v []float64) (float64, error) {
	rt := d.scoring
	if rt == nil {
		// Hand-assembled detector: staged, allocating path.
		sw := d.projHist.Start()
		w, err := d.PCA.Project(v)
		sw = sw.Handoff(d.scoreHist)
		if err != nil {
			return 0, err
		}
		lp, err := d.GMM.LogProb(w)
		sw.Stop()
		return lp, err
	}
	s := rt.pool.Get().(*detScratch)
	defer rt.pool.Put(s)
	return d.scoreVector(s, v)
}

// scoreVector scores one vector with pooled scratch: the fused kernel
// normally, or the staged Into path when per-stage histograms are
// installed (so project/score timings stay separable).
func (d *Detector) scoreVector(s *detScratch, v []float64) (float64, error) {
	if d.projHist == nil && d.scoreHist == nil {
		return s.sc.Score(v)
	}
	sw := d.projHist.Start()
	err := d.PCA.ProjectInto(s.w, v)
	sw = sw.Handoff(d.scoreHist)
	if err != nil {
		return 0, err
	}
	lp, err := d.GMM.LogProbScratch(s.w, s.gs)
	sw.Stop()
	return lp, err
}

// Threshold returns θ_p for a calibrated quantile.
func (d *Detector) Threshold(p float64) (float64, error) {
	for _, th := range d.Thresholds {
		if th.P == p {
			return th.Theta, nil
		}
	}
	return 0, fmt.Errorf("core: p=%g: %w", p, ErrUnknownQuantile)
}

// Classify scores m and compares against θ_p: anomalous when the log
// density falls below the threshold.
func (d *Detector) Classify(m *heatmap.HeatMap, p float64) (anomalous bool, logDensity float64, err error) {
	theta, err := d.Threshold(p)
	if err != nil {
		return false, 0, err
	}
	lp, err := d.LogDensity(m)
	if err != nil {
		return false, 0, err
	}
	return lp < theta, lp, nil
}

// Recalibrate re-derives the detector's thresholds (and residual
// thresholds, when previously calibrated) from a fresh normal
// calibration set, keeping the learned PCA/GMM models. This is the
// cheap answer to threshold drift under legitimate behaviour change
// (§5.5's false-positive concern): refresh θ_p in the field without
// retraining.
func (d *Detector) Recalibrate(calib []*heatmap.HeatMap) error {
	if len(calib) == 0 {
		return fmt.Errorf("core: empty recalibration set: %w", ErrConfig)
	}
	for i, m := range calib {
		if m.Def != d.Region {
			return fmt.Errorf("core: recalibration MHM %d: %w", i, ErrRegionMismatch)
		}
	}
	vecs, err := heatmap.PackVectors(calib)
	if err != nil {
		return fmt.Errorf("core: recalibration: %w", err)
	}
	densities := make([]float64, len(calib))
	if err := d.scoreVectors(densities, vecs); err != nil {
		return fmt.Errorf("core: recalibration: %w", err)
	}
	newThresholds := make([]Threshold, len(d.Thresholds))
	for i, th := range d.Thresholds {
		theta, err := stats.Quantile(densities, th.P)
		if err != nil {
			return err
		}
		newThresholds[i] = Threshold{P: th.P, Theta: theta}
	}
	var newResidual []Threshold
	if len(d.ResidualThresholds) > 0 {
		residuals := make([]float64, len(calib))
		for i, m := range calib {
			r, err := d.Residual(m)
			if err != nil {
				return fmt.Errorf("core: recalibration residual %d: %w", i, err)
			}
			residuals[i] = r
		}
		newResidual = make([]Threshold, len(d.ResidualThresholds))
		for i, th := range d.ResidualThresholds {
			theta, err := stats.Quantile(residuals, 1-th.P)
			if err != nil {
				return err
			}
			newResidual[i] = Threshold{P: th.P, Theta: theta}
		}
	}
	d.Thresholds = newThresholds
	d.ResidualThresholds = newResidual
	return nil
}

// Verdict is one interval's classification result.
type Verdict struct {
	Index      int
	Start, End int64
	LogDensity float64
	// Anomalous maps quantile p -> decision.
	Anomalous map[float64]bool
}

// ClassifySeries scores a sequence of MHMs against every calibrated
// threshold — the secure core's per-interval loop.
func (d *Detector) ClassifySeries(maps []*heatmap.HeatMap) ([]Verdict, error) {
	if len(maps) == 0 {
		return nil, nil
	}
	for i, m := range maps {
		if m.Def != d.Region {
			return nil, fmt.Errorf("core: interval %d: %w", i, ErrRegionMismatch)
		}
	}
	vecs, err := heatmap.PackVectors(maps)
	if err != nil {
		return nil, fmt.Errorf("core: series: %w", err)
	}
	densities := make([]float64, len(maps))
	if err := d.scoreVectors(densities, vecs); err != nil {
		return nil, fmt.Errorf("core: series: %w", err)
	}
	out := make([]Verdict, len(maps))
	for i, m := range maps {
		lp := densities[i]
		v := Verdict{Index: i, Start: m.Start, End: m.End, LogDensity: lp,
			Anomalous: make(map[float64]bool, len(d.Thresholds))}
		for _, th := range d.Thresholds {
			v.Anomalous[th.P] = lp < th.Theta
		}
		out[i] = v
	}
	return out, nil
}

// FalsePositiveRate counts the fraction of verdicts flagged at p —
// meaningful when the series is known-normal.
func FalsePositiveRate(verdicts []Verdict, p float64) float64 {
	if len(verdicts) == 0 {
		return 0
	}
	n := 0
	for _, v := range verdicts {
		if v.Anomalous[p] {
			n++
		}
	}
	return float64(n) / float64(len(verdicts))
}

// detectorJSON is the persistence wrapper; the nested models use their
// own serializations.
type detectorJSON struct {
	Region             heatmap.Def     `json:"region"`
	PCA                json.RawMessage `json:"pca"`
	GMM                json.RawMessage `json:"gmm"`
	Thresholds         []Threshold     `json:"thresholds"`
	ResidualThresholds []Threshold     `json:"residualThresholds,omitempty"`
}

// Save writes the full detector as JSON.
func (d *Detector) Save(w io.Writer) error {
	var pcaBuf, gmmBuf bytes.Buffer
	if err := d.PCA.Save(&pcaBuf); err != nil {
		return err
	}
	if err := d.GMM.Save(&gmmBuf); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(detectorJSON{
		Region:             d.Region,
		PCA:                json.RawMessage(pcaBuf.Bytes()),
		GMM:                json.RawMessage(gmmBuf.Bytes()),
		Thresholds:         d.Thresholds,
		ResidualThresholds: d.ResidualThresholds,
	})
}

// Load reads a detector produced by Save.
func Load(r io.Reader) (*Detector, error) {
	var dj detectorJSON
	if err := json.NewDecoder(r).Decode(&dj); err != nil {
		return nil, fmt.Errorf("core: decode detector: %w", err)
	}
	pcaModel, err := pca.Load(bytes.NewReader(dj.PCA))
	if err != nil {
		return nil, err
	}
	gmmModel, err := gmm.Load(bytes.NewReader(dj.GMM))
	if err != nil {
		return nil, err
	}
	if err := dj.Region.Validate(); err != nil {
		return nil, err
	}
	d := &Detector{
		Region:             dj.Region,
		PCA:                pcaModel,
		GMM:                gmmModel,
		Thresholds:         dj.Thresholds,
		ResidualThresholds: dj.ResidualThresholds,
	}
	d.scoring = newScoring(dj.Region.Cells(), pcaModel, gmmModel)
	return d, nil
}
