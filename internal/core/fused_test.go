package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/trace"
)

// synthTrace generates a time-ordered event stream whose intervals look
// like patternMap activity: each interval emits bursts over the hot
// cells of an alternating phase blend.
func synthTrace(rng *rand.Rand, intervals int, intervalMicros int64) []trace.Access {
	var events []trace.Access
	for iv := 0; iv < intervals; iv++ {
		base := int64(iv) * intervalMicros
		m := patternMap(rng, iv)
		step := intervalMicros / int64(len(m.Counts)+1)
		for i, c := range m.Counts {
			if c == 0 {
				continue
			}
			events = append(events, trace.Access{
				Time:  base + int64(i)*step,
				Addr:  testDef.AddrBase + uint64(i)*testDef.Gran,
				Count: c,
			})
		}
	}
	return events
}

func TestTraceScorerMatchesStagedPath(t *testing.T) {
	d, rng := trainTestDetector(t)
	const intervalMicros = 10_000
	const intervals = 12
	events := synthTrace(rng, intervals, intervalMicros)

	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	for _, a := range events {
		if err := tw.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reference: the staged path — per-event device feeding, dense
	// Collect, LogDensity on the cloned map.
	dev := memometer.New()
	if err := dev.Configure(memometer.Config{Region: testDef, IntervalMicros: intervalMicros}); err != nil {
		t.Fatal(err)
	}
	var want []IntervalScore
	for _, a := range events {
		if err := dev.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			t.Fatal(err)
		}
		for dev.HasPending() {
			m, err := dev.Collect()
			if err != nil {
				t.Fatal(err)
			}
			lp, err := d.LogDensity(m)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, IntervalScore{Start: m.Start, End: m.End, LogDensity: lp})
		}
	}
	if err := dev.Tick(intervals * intervalMicros); err != nil {
		t.Fatal(err)
	}
	for dev.HasPending() {
		m, err := dev.Collect()
		if err != nil {
			t.Fatal(err)
		}
		lp, err := d.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, IntervalScore{Start: m.Start, End: m.End, LogDensity: lp})
	}
	if len(want) != intervals {
		t.Fatalf("reference produced %d intervals, want %d", len(want), intervals)
	}

	// Fused path, with a small batch to exercise resubmit-after-boundary.
	ts, err := d.NewTraceScorer(intervalMicros, 16)
	if err != nil {
		t.Fatal(err)
	}
	var got []IntervalScore
	if err := ts.Run(trace.NewReader(&buf), func(is IntervalScore) error {
		got = append(got, is)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := ts.FlushAt(intervals*intervalMicros, func(is IntervalScore) error {
		got = append(got, is)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("fused path produced %d intervals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Start != want[i].Start || got[i].End != want[i].End {
			t.Errorf("interval %d bounds [%d,%d], want [%d,%d]",
				i, got[i].Start, got[i].End, want[i].Start, want[i].End)
		}
		if got[i].LogDensity != want[i].LogDensity {
			t.Errorf("interval %d log density %v, want %v (must be bit-identical)",
				i, got[i].LogDensity, want[i].LogDensity)
		}
		if got[i].NNZ == 0 {
			t.Errorf("interval %d reports zero occupied cells", i)
		}
	}

	st := ts.Device().Stats()
	if st.Intervals != uint64(intervals) || st.Overruns != 0 {
		t.Errorf("device stats %+v, want %d intervals, 0 overruns", st, intervals)
	}
}

func TestTraceScorerFeedAllocationFree(t *testing.T) {
	d, rng := trainTestDetector(t)
	const intervalMicros = 10_000
	ts, err := d.NewTraceScorer(intervalMicros, 256)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(IntervalScore) error { return nil }
	// Warm every growable buffer with two full intervals.
	warm := synthTrace(rng, 2, intervalMicros)
	if err := ts.Feed(warm, emit); err != nil {
		t.Fatal(err)
	}
	if err := ts.FlushAt(2*intervalMicros, emit); err != nil {
		t.Fatal(err)
	}
	events := synthTrace(rng, 1, intervalMicros)
	base := int64(2 * intervalMicros)
	clock := base
	allocs := testing.AllocsPerRun(20, func() {
		for i := range events {
			events[i].Time = clock + int64(i) // keep time monotone across runs
		}
		if err := ts.Feed(events, emit); err != nil {
			t.Fatal(err)
		}
		clock += intervalMicros
		if err := ts.FlushAt(clock, emit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm fused cycle allocates %.1f times per interval, want 0", allocs)
	}
}

func TestTraceScorerErrors(t *testing.T) {
	d, _ := trainTestDetector(t)
	if _, err := d.NewTraceScorer(0, 0); err == nil {
		t.Error("NewTraceScorer accepted a zero interval")
	}
	ts, err := d.NewTraceScorer(10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Non-monotone time inside Feed surfaces the device error.
	bad := []trace.Access{
		{Time: 100, Addr: testDef.AddrBase, Count: 1},
		{Time: 50, Addr: testDef.AddrBase, Count: 1},
	}
	if err := ts.Feed(bad, func(IntervalScore) error { return nil }); err == nil {
		t.Error("Feed accepted a time-reversed stream")
	}
}
