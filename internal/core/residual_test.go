package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
)

// nullSpaceAnomaly looks like a perfectly normal pattern in the trained
// subspace but adds heat to cells the training data never touched — the
// case the plain projection is blind to and the residual extension must
// catch.
func nullSpaceAnomaly(rng *rand.Rand) *heatmap.HeatMap {
	m := patternMap(rng, 0)
	for i := 48; i < 64; i++ {
		m.Counts[i] = uint32(800 + rng.Intn(100))
	}
	return m
}

func trainResidualDetector(t *testing.T) (*Detector, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	var train, calib []*heatmap.HeatMap
	for i := 0; i < 240; i++ {
		train = append(train, patternMap(rng, i))
	}
	for i := 0; i < 120; i++ {
		calib = append(calib, patternMap(rng, i))
	}
	d, err := Train(train, calib, Config{
		PCA:               pca.Options{Components: 4},
		GMM:               gmm.Options{Components: 3, Restarts: 3},
		ResidualQuantiles: []float64{0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, rng
}

func TestResidualCatchesNullSpaceAnomaly(t *testing.T) {
	d, rng := trainResidualDetector(t)
	anom := nullSpaceAnomaly(rng)

	// The density test alone misses it (the extra heat projects to
	// nothing).
	densityAnom, _, err := d.Classify(anom, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if densityAnom {
		t.Log("density test caught the null-space anomaly on its own (fine, but unexpected)")
	}

	// The combined test must flag it via the residual.
	combined, _, residual, err := d.ClassifyWithResidual(anom, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !combined {
		t.Error("residual extension missed a null-space anomaly")
	}
	rTheta, err := d.ResidualThreshold(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if residual <= rTheta {
		t.Errorf("residual %g not above threshold %g", residual, rTheta)
	}
}

func TestResidualFalsePositiveRateNearP(t *testing.T) {
	d, rng := trainResidualDetector(t)
	flagged := 0
	const n = 400
	for i := 0; i < n; i++ {
		anom, _, _, err := d.ClassifyWithResidual(patternMap(rng, i), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if anom {
			flagged++
		}
	}
	// Combined test unions two p=0.01 tests whose thresholds were
	// estimated from only 120 calibration samples; allow generous slack.
	if rate := float64(flagged) / n; rate > 0.10 {
		t.Errorf("combined FP rate %.3f", rate)
	}
}

func TestResidualDisabledByDefault(t *testing.T) {
	d, _ := trainTestDetector(t)
	if len(d.ResidualThresholds) != 0 {
		t.Errorf("residual thresholds present without opting in: %+v", d.ResidualThresholds)
	}
	m, _ := heatmap.New(testDef)
	if _, _, _, err := d.ClassifyWithResidual(m, 0.01); !errors.Is(err, ErrUnknownQuantile) {
		t.Errorf("ClassifyWithResidual without calibration: %v", err)
	}
	if _, err := d.ResidualThreshold(0.01); !errors.Is(err, ErrUnknownQuantile) {
		t.Errorf("ResidualThreshold without calibration: %v", err)
	}
}

func TestResidualRegionMismatch(t *testing.T) {
	d, _ := trainResidualDetector(t)
	other, err := heatmap.New(heatmap.Def{AddrBase: 0, Size: 1024, Gran: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Residual(other); !errors.Is(err, ErrRegionMismatch) {
		t.Errorf("foreign region: %v", err)
	}
}

func TestResidualThresholdsSurviveSaveLoad(t *testing.T) {
	d, rng := trainResidualDetector(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.ResidualThresholds) != len(d.ResidualThresholds) {
		t.Fatalf("residual thresholds lost: %+v", d2.ResidualThresholds)
	}
	anom := nullSpaceAnomaly(rng)
	a1, _, r1, err := d.ClassifyWithResidual(anom, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, r2, err := d2.ClassifyWithResidual(anom, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || r1 != r2 {
		t.Errorf("verdicts differ after round trip: (%v,%g) vs (%v,%g)", a1, r1, a2, r2)
	}
}

func TestResidualConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	many := []*heatmap.HeatMap{patternMap(rng, 0), patternMap(rng, 1), patternMap(rng, 2)}
	if _, err := Train(many, many, Config{ResidualQuantiles: []float64{1.5}}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad residual quantile: %v", err)
	}
}

func TestRecalibrateTracksShiftedBehaviour(t *testing.T) {
	d, rng := trainResidualDetector(t)
	orig := append([]Threshold(nil), d.Thresholds...)

	// Legitimate behaviour shift: volumes grow 10%. The old thresholds
	// now over-flag; recalibrating on the shifted normal data restores
	// the configured false-positive rate.
	shifted := func() *heatmap.HeatMap {
		m := patternMap(rng, rng.Intn(3))
		for i := range m.Counts {
			m.Counts[i] = uint32(float64(m.Counts[i]) * 1.10)
		}
		return m
	}
	var calib []*heatmap.HeatMap
	for i := 0; i < 200; i++ {
		calib = append(calib, shifted())
	}
	preFlag := 0
	for _, m := range calib {
		if anom, _, err := d.Classify(m, 0.01); err != nil {
			t.Fatal(err)
		} else if anom {
			preFlag++
		}
	}
	if err := d.Recalibrate(calib); err != nil {
		t.Fatal(err)
	}
	postFlag := 0
	for i := 0; i < 200; i++ {
		if anom, _, err := d.Classify(shifted(), 0.01); err != nil {
			t.Fatal(err)
		} else if anom {
			postFlag++
		}
	}
	if postFlag >= preFlag && preFlag > 10 {
		t.Errorf("recalibration did not reduce over-flagging: %d -> %d", preFlag, postFlag)
	}
	if float64(postFlag)/200 > 0.08 {
		t.Errorf("post-recalibration FP rate %.3f", float64(postFlag)/200)
	}
	// Quantiles preserved, thetas changed.
	if len(d.Thresholds) != len(orig) {
		t.Fatal("threshold count changed")
	}
	for i := range orig {
		if d.Thresholds[i].P != orig[i].P {
			t.Errorf("quantile %d changed", i)
		}
	}
	// Residual thresholds were recalibrated too (still present).
	if len(d.ResidualThresholds) == 0 {
		t.Error("residual thresholds lost in recalibration")
	}
}

func TestRecalibrateValidation(t *testing.T) {
	d, _ := trainResidualDetector(t)
	if err := d.Recalibrate(nil); !errors.Is(err, ErrConfig) {
		t.Errorf("empty set: %v", err)
	}
	foreign, _ := heatmap.New(heatmap.Def{AddrBase: 0, Size: 1024, Gran: 256})
	if err := d.Recalibrate([]*heatmap.HeatMap{foreign}); !errors.Is(err, ErrRegionMismatch) {
		t.Errorf("foreign region: %v", err)
	}
}
