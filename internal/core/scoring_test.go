package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/obs"
)

var errMismatch = errors.New("concurrent score differs from serial score")

// stagedCopy strips the scoring runtime so the copy scores through the
// legacy staged pca.Project + gmm.LogProb path.
func stagedCopy(d *Detector) *Detector {
	c := *d
	c.scoring = nil
	return &c
}

// TestFusedMatchesStagedDetector is the detector-level acceptance bound:
// the fused engine must reproduce the staged LogDensityVector within
// 1e-12 on hundreds of held-out vectors (it is built to be
// bit-identical, which is also what keeps calibrated θ_p stable).
func TestFusedMatchesStagedDetector(t *testing.T) {
	d, rng := trainTestDetector(t)
	if d.scoring == nil {
		t.Fatal("trained detector has no scoring runtime")
	}
	staged := stagedCopy(d)
	for i := 0; i < 600; i++ {
		var m = patternMap(rng, i)
		if i%5 == 0 {
			m = anomalyMap(rng)
		}
		v := m.Vector()
		want, err := staged.LogDensityVector(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.LogDensityVector(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("vector %d: fused %v, staged %v", i, got, want)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("vector %d: fused score not bit-identical to staged", i)
		}
		gotM, err := d.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(gotM) != math.Float64bits(want) {
			t.Fatalf("vector %d: LogDensity differs from LogDensityVector", i)
		}
	}
}

// TestDetectorScoringZeroAlloc pins the steady-state allocation contract
// of the detector entry points — fused, and staged-with-histograms.
func TestDetectorScoringZeroAlloc(t *testing.T) {
	d, rng := trainTestDetector(t)
	m := patternMap(rng, 0)
	v := m.Vector()

	if _, err := d.LogDensityVector(v); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := d.LogDensityVector(v); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("fused LogDensityVector allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := d.LogDensity(m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("fused LogDensity allocates %.1f/op, want 0", n)
	}

	// Instrumented detectors take the staged Into path so the per-stage
	// histograms stay meaningful; it must be allocation-free too.
	inst := *d
	inst.Instrument(obs.NewRegistry())
	if _, err := inst.LogDensity(m); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := inst.LogDensity(m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("instrumented LogDensity allocates %.1f/op, want 0", n)
	}
}

// TestScoreEngineAfterTrainAndLoad: both constructors install the fused
// engine, and Save/Load reproduces scoring bit for bit.
func TestScoreEngineAfterTrainAndLoad(t *testing.T) {
	d, rng := trainTestDetector(t)
	eng, err := d.ScoreEngine()
	if err != nil {
		t.Fatal(err)
	}
	if l, lp := eng.Dim(); l != 64 || lp != 4 {
		t.Fatalf("engine dims (%d, %d)", l, lp)
	}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.scoring == nil {
		t.Fatal("loaded detector has no scoring runtime")
	}
	m := patternMap(rng, 1)
	want, err := d.LogDensity(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.LogDensity(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("loaded detector scores %v, trained %v", got, want)
	}

	// A hand-assembled detector still works through the fallback.
	bare := &Detector{Region: d.Region, PCA: d.PCA, GMM: d.GMM, Thresholds: d.Thresholds}
	if _, err := bare.ScoreEngine(); err != nil {
		t.Fatalf("bare ScoreEngine: %v", err)
	}
	got, err = bare.LogDensity(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("bare detector scores %v, trained %v", got, want)
	}
}

// TestConcurrentScoringConsistent hammers the pooled scratch from many
// goroutines; every concurrent score must equal its serial counterpart.
// Run under -race in CI.
func TestConcurrentScoringConsistent(t *testing.T) {
	d, rng := trainTestDetector(t)
	const n = 64
	maps := make([]*heatmap.HeatMap, 0, n)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		m := patternMap(rng, i)
		maps = append(maps, m)
		lp, err := d.LogDensity(m)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = lp
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 200; iter++ {
				i := rr.Intn(n)
				lp, err := d.LogDensity(maps[i])
				if err != nil {
					errs[g] = err
					return
				}
				if math.Float64bits(lp) != math.Float64bits(want[i]) {
					errs[g] = errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestResidualAllocationFree: the residual check shares the pooled
// scratch with scoring, so per-interval residual monitoring stays
// allocation-free, and the pooled path reproduces the allocating
// fallback bit for bit.
func TestResidualAllocationFree(t *testing.T) {
	d, rng := trainTestDetector(t)
	m := patternMap(rng, 0)
	want, err := stagedCopy(d).Residual(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Residual(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("pooled residual %v, staged %v", got, want)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := d.Residual(m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("pooled Residual allocates %.1f/op, want 0", n)
	}
}
