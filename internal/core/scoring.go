package core

import (
	"fmt"
	"sync"

	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/score"
)

// scoring is the detector's fused scoring runtime: the immutable engine
// plus a pool of per-call scratch, held behind a single pointer so
// Detector values stay freely copyable (benchmarks and mhmreport
// shallow-copy detectors to instrument them independently). Train and
// Load install it; hand-assembled Detector literals run without one on
// the legacy allocating path.
type scoring struct {
	eng  *score.Engine
	pool sync.Pool // *detScratch
}

// detScratch is one pooled unit of per-call working storage.
type detScratch struct {
	sc   *score.Scorer // fused single/batch scoring
	vbuf []float64     // length L: HeatMap.VectorInto target
	w    []float64     // length L': staged projection output
	rec  []float64     // length L: residual reconstruction scratch
	gs   *gmm.Scratch  // staged density evaluation scratch
}

// newScoring builds the runtime for a trained model pair, or nil when
// the engine cannot serve it (shape mismatch between the region and the
// basis); callers fall back to the staged path in that case.
func newScoring(cells int, p *pca.Model, g *gmm.Model) *scoring {
	eng, err := score.New(p, g)
	if err != nil {
		return nil
	}
	l, lp := eng.Dim()
	if l != cells {
		return nil
	}
	rt := &scoring{eng: eng}
	rt.pool.New = func() any {
		return &detScratch{
			sc:   eng.NewScorer(),
			vbuf: make([]float64, l),
			w:    make([]float64, lp),
			rec:  make([]float64, l),
			gs:   g.NewScratch(),
		}
	}
	return rt
}

// ScoreEngine exposes the detector's fused scoring engine, from which
// callers (the sharded pipeline, experiment fan-outs) derive per-worker
// Scorers. Detectors assembled by hand rather than through Train or
// Load get a freshly built engine on every call.
func (d *Detector) ScoreEngine() (*score.Engine, error) {
	if d.scoring != nil {
		return d.scoring.eng, nil
	}
	return score.New(d.PCA, d.GMM)
}

// LogDensityBatch scores a set of raw MHM vectors into dst
// (len(dst) == len(vecs)) as one blocked panel product through the
// fused engine — the fast path for calibration sweeps and offline
// evaluation. Each element is bit-identical to LogDensityVector.
func (d *Detector) LogDensityBatch(dst []float64, vecs [][]float64) error {
	if len(dst) != len(vecs) {
		return fmt.Errorf("core: batch dst length %d for %d vectors: %w", len(dst), len(vecs), ErrConfig)
	}
	return d.scoreVectors(dst, vecs)
}

// scoreVectors scores a set of raw MHM vectors into dst through the
// batch engine (falling back to per-vector scoring without a runtime).
// Bit-identical to LogDensityVector on each element.
func (d *Detector) scoreVectors(dst []float64, vecs [][]float64) error {
	if rt := d.scoring; rt != nil {
		s := rt.pool.Get().(*detScratch)
		defer rt.pool.Put(s)
		return s.sc.ScoreBatch(dst, vecs)
	}
	for i, v := range vecs {
		lp, err := d.LogDensityVector(v)
		if err != nil {
			return err
		}
		dst[i] = lp
	}
	return nil
}
