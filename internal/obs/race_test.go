package obs

import (
	"sync"
	"testing"
)

// TestConcurrentObserveAndSnapshot hammers every metric kind from many
// goroutines while other goroutines snapshot and export concurrently —
// the race-detector guard for the lock-free hot path (run under
// `go test -race`).
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const (
		writers  = 8
		readers  = 4
		perIter  = 2000
		perWrite = 3
	)
	var writerWG, readerWG sync.WaitGroup
	done := make(chan struct{})

	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := r.Snapshot()
				// Internal consistency of whatever we saw: bucket sums
				// never exceed the count read afterwards.
				for name, hs := range s.Histograms {
					var inBuckets uint64
					for _, b := range hs.Buckets {
						inBuckets += b.Count
					}
					inBuckets += hs.Overflow
					if inBuckets > r.Histogram(name, nil).Count() {
						t.Errorf("%s: buckets %d > later count", name, inBuckets)
						return
					}
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			// Mix of cached and by-name lookups so registration races
			// with concurrent reads.
			c := r.Counter("shared.count")
			h := r.Histogram("shared.lat", LatencyBuckets)
			for i := 0; i < perIter; i++ {
				c.Add(perWrite)
				h.Observe(float64(i % 1000))
				r.Gauge("shared.gauge").Set(float64(i))
				r.Counter("own.count").Inc()
				h.Start().Stop()
			}
		}()
	}

	writerWG.Wait()
	close(done)
	readerWG.Wait()

	want := uint64(writers * perIter * perWrite)
	if got := r.Counter("shared.count").Value(); got != want {
		t.Errorf("shared.count = %d, want %d", got, want)
	}
	if got := r.Counter("own.count").Value(); got != uint64(writers*perIter) {
		t.Errorf("own.count = %d", got)
	}
	// Histogram totals: one Observe plus one Stopwatch per iteration.
	if got := r.Histogram("shared.lat", nil).Count(); got != uint64(2*writers*perIter) {
		t.Errorf("shared.lat count = %d, want %d", got, 2*writers*perIter)
	}
}
