// Package obs is a dependency-free metrics subsystem for the online
// detection loop: atomic counters, gauges and fixed-bucket latency
// histograms behind a named registry. The paper's deployment model
// (§3.1, §5.4) rests on a timing argument — analysis of interval i must
// finish while interval i+1 is recorded — and a security monitor must
// account for its own runtime cost; these metrics make that budget
// observable per stage instead of only as an aggregate overrun count.
//
// Design rules:
//
//   - The hot path (Counter.Add, Gauge.Set, Histogram.Observe,
//     Stopwatch) is lock-free, allocation-free and built on sync/atomic
//     only. A testing.AllocsPerRun guard enforces the no-allocation
//     property.
//   - Every type is nil-safe: a nil *Registry hands out nil metrics,
//     and every operation on a nil metric is a single-predicate no-op,
//     so uninstrumented callers pay one branch and nothing else.
//   - Snapshots are point-in-time but not atomic across metrics: a
//     snapshot taken during concurrent Observe calls may see a count
//     that is one ahead of the bucket sums. That is acceptable for
//     monitoring and keeps the write side wait-free.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for stage latencies in
// microseconds, spanning sub-µs projection steps up to the paper's
// 10 ms monitoring interval and beyond.
var LatencyBuckets = []float64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000,
}

// Counter is a monotonically increasing event count.
//
//mhm:nilsafe
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil counter.
//
//mhm:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
//
//mhm:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric (e.g. a current depth or level).
//
//mhm:nilsafe
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
//
//mhm:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil gauge.
//
//mhm:hotpath
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets defined by a
// sorted slice of upper bounds (an implicit +Inf overflow bucket
// catches the rest). Count, sum, min and max are tracked alongside.
//
//mhm:nilsafe
type Histogram struct {
	bounds  []float64 // immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

// newHistogram builds a histogram over a defensive copy of bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{
		bounds:  b,
		buckets: make([]atomic.Uint64, len(b)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// atomicFoldFloat folds v into the float64 stored in bits using keep to
// decide whether the incumbent survives.
//
//mhm:hotpath
func atomicFoldFloat(bits *atomic.Uint64, v float64, keep func(cur, v float64) bool) {
	for {
		old := bits.Load()
		cur := math.Float64frombits(old)
		if keep(cur, v) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Observe records one value. Lock-free and allocation-free; no-op on a
// nil histogram.
//
//mhm:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound is >= v; len(bounds) selects overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			break
		}
	}
	atomicFoldFloat(&h.minBits, v, func(cur, v float64) bool { return cur <= v })
	atomicFoldFloat(&h.maxBits, v, func(cur, v float64) bool { return cur >= v })
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Start begins timing a stage against this histogram. On a nil
// histogram the returned stopwatch is inert and Start does not even
// read the clock, so uninstrumented callers pay one predicate.
func (h *Histogram) Start() Stopwatch {
	if h == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: h, start: time.Now()}
}

// Time runs f and records its duration in microseconds.
func (h *Histogram) Time(f func()) {
	sw := h.Start()
	f()
	sw.Stop()
}

// Stopwatch scopes one latency measurement; obtain it from
// Histogram.Start and call Stop exactly once.
type Stopwatch struct {
	h     *Histogram
	start time.Time
}

// Stop records the elapsed time in microseconds and returns it. A
// stopwatch from a nil histogram returns 0 and records nothing.
func (s Stopwatch) Stop() float64 {
	if s.h == nil {
		return 0
	}
	micros := float64(time.Since(s.start).Nanoseconds()) / 1e3
	s.h.Observe(micros)
	return micros
}

// Handoff stops this stopwatch and starts one on next from a single
// clock reading, so adjacent stages are timed without a gap and with
// one fewer time.Now than Stop-then-Start. Either side may be nil.
func (s Stopwatch) Handoff(next *Histogram) Stopwatch {
	if s.h == nil && next == nil {
		return Stopwatch{}
	}
	now := time.Now()
	if s.h != nil {
		s.h.Observe(float64(now.Sub(s.start).Nanoseconds()) / 1e3)
	}
	if next == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: next, start: now}
}

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. A nil *Registry is valid and hands out nil
// metrics, making instrumentation free when disabled.
//
//mhm:nilsafe
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing buckets
// regardless of bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		if len(bounds) == 0 {
			bounds = LatencyBuckets
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}
