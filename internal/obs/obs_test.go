package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("counter not reused by name")
	}
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5556 {
		t.Errorf("sum = %g", h.Sum())
	}
	hs := r.Snapshot().Histograms["h"]
	wantBuckets := []uint64{2, 1, 1}
	for i, w := range wantBuckets {
		if hs.Buckets[i].Count != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Buckets[i].Count, w)
		}
	}
	if hs.Overflow != 1 {
		t.Errorf("overflow = %d", hs.Overflow)
	}
	if hs.Min != 1 || hs.Max != 5000 {
		t.Errorf("min/max = %g/%g", hs.Min, hs.Max)
	}
	if m := hs.Mean(); math.Abs(m-5556.0/5) > 1e-9 {
		t.Errorf("mean = %g", m)
	}
	// Quantiles are bucket-interpolated estimates: monotone and bounded.
	p50, p99 := hs.Quantile(0.5), hs.Quantile(0.99)
	if p50 < hs.Min || p99 > hs.Max || p50 > p99 {
		t.Errorf("quantiles not monotone in range: p50=%g p99=%g", p50, p99)
	}
}

func TestHistogramBoundaryValuesLandInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 100})
	h.Observe(10) // exactly on a bound: le semantics, first bucket
	hs := r.Snapshot().Histograms["h"]
	if hs.Buckets[0].Count != 1 || hs.Buckets[1].Count != 0 {
		t.Errorf("boundary observation buckets = %+v", hs.Buckets)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", nil)
	hs := r.Snapshot().Histograms["h"]
	if hs.Count != 0 || hs.Min != 0 || hs.Max != 0 || hs.Quantile(0.5) != 0 {
		t.Errorf("empty histogram snapshot = %+v", hs)
	}
}

// TestNilSafety: a nil registry hands out nil metrics and every
// operation on them is a no-op — the "uninstrumented callers pay one
// predicate" contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil metrics")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.Time(func() {})
	sw := h.Start()
	if sw.Stop() != 0 {
		t.Error("nil stopwatch measured time")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics accumulated state")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestStopwatchRecords(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	sw := h.Start()
	micros := sw.Stop()
	if micros < 0 {
		t.Errorf("negative elapsed %g", micros)
	}
	if h.Count() != 1 {
		t.Errorf("stopwatch did not record: count=%d", h.Count())
	}
	h.Time(func() {})
	if h.Count() != 2 {
		t.Errorf("Time did not record: count=%d", h.Count())
	}
}

func TestStopwatchHandoff(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("stage.a", nil)
	b := r.Histogram("stage.b", nil)
	sw := a.Start().Handoff(b)
	if a.Count() != 1 {
		t.Errorf("Handoff did not record the first stage: count=%d", a.Count())
	}
	if micros := sw.Stop(); micros < 0 {
		t.Errorf("negative elapsed %g", micros)
	}
	if b.Count() != 1 {
		t.Errorf("handed-off stopwatch did not record: count=%d", b.Count())
	}
	// Nil combinations: record what is non-nil, never panic.
	var nilH *Histogram
	if sw := nilH.Start().Handoff(b); sw.Stop() < 0 || b.Count() != 2 {
		t.Error("nil→live handoff did not record the live stage")
	}
	if a.Start().Handoff(nil).Stop() != 0 {
		t.Error("live→nil handoff returned a live stopwatch")
	}
	if a.Count() != 2 {
		t.Errorf("live→nil handoff did not record the first stage: count=%d", a.Count())
	}
	if nilH.Start().Handoff(nil).Stop() != 0 {
		t.Error("nil→nil handoff not inert")
	}
}

// TestHotPathDoesNotAllocate is the acceptance guard: Observe, Add and
// the stopwatch pair must not allocate on the hot path.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3.14) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123.4) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Start().Stop() }); n != 0 {
		t.Errorf("Stopwatch cycle allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Start().Handoff(h).Stop() }); n != 0 {
		t.Errorf("Handoff cycle allocates %v per op", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(1); nilH.Start().Stop() }); n != 0 {
		t.Errorf("nil histogram path allocates %v per op", n)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("level").Set(0.5)
	r.Histogram("lat", []float64{10, 100}).Observe(5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Counters sorted by name, then gauges, then histograms.
	if !strings.HasPrefix(lines[0], "counter a.count 1") ||
		!strings.HasPrefix(lines[1], "counter b.count 2") ||
		!strings.HasPrefix(lines[2], "gauge   level 0.5") ||
		!strings.HasPrefix(lines[3], "hist    lat count=1") {
		t.Errorf("unexpected text layout:\n%s", out)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Add(7)
	r.Gauge("depth").Set(2)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(50)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := ParseSnapshot([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["events"] != 7 || s.Gauges["depth"] != 2 {
		t.Errorf("round trip scalars = %+v", s)
	}
	hs := s.Histograms["lat"]
	if hs.Count != 2 || hs.Overflow != 1 || hs.Buckets[0].Count != 1 {
		t.Errorf("round trip histogram = %+v", hs)
	}
	if _, err := ParseSnapshot([]byte("{not json")); err == nil {
		t.Error("malformed snapshot accepted")
	}
}
