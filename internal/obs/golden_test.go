package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry covering every metric
// kind and every histogram field (populated buckets, overflow, empty
// histogram).
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("pipeline.intervals").Add(4)
	r.Counter("pipeline.overruns").Add(1)
	r.Counter("alarm.raised").Inc()
	r.Gauge("memometer.pending").Set(1)
	h := r.Histogram("pipeline.analysis_micros", []float64{10, 100, 1000})
	for _, v := range []float64{3, 42, 42, 2500} {
		h.Observe(v)
	}
	r.Histogram("core.project_micros", []float64{10, 100, 1000})
	return r
}

// TestSnapshotGolden freezes the JSON export schema: cmd/mhmreport and
// any external consumer parse this exact shape. Regenerate with
// `go test ./internal/obs -run TestSnapshotGolden -update` only when a
// schema change is intentional.
func TestSnapshotGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "snapshot.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("snapshot schema drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The golden bytes must also parse back losslessly.
	s, err := ParseSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["pipeline.intervals"] != 4 {
		t.Errorf("parsed golden counters = %+v", s.Counters)
	}
	if hs := s.Histograms["pipeline.analysis_micros"]; hs.Count != 4 || hs.Overflow != 1 {
		t.Errorf("parsed golden histogram = %+v", hs)
	}
}
