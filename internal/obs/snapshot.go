// Snapshot export: the registry serializes to a frozen JSON schema
// (guarded by a golden test) consumed by cmd/mhmreport, plus an
// expvar-style text form for eyeballing. Map keys are emitted sorted
// (encoding/json's behaviour), so equal registries produce identical
// bytes.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// BucketSnapshot is one histogram bucket: Count observations with
// value <= LE. The implicit +Inf bucket is reported separately as
// HistogramSnapshot.Overflow so the JSON never contains non-finite
// numbers.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is the frozen export form of a histogram. Min and
// Max are 0 when Count is 0.
type HistogramSnapshot struct {
	Count    uint64           `json:"count"`
	Sum      float64          `json:"sum"`
	Min      float64          `json:"min"`
	Max      float64          `json:"max"`
	Buckets  []BucketSnapshot `json:"buckets"`
	Overflow uint64           `json:"overflow"`
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation inside the covering bucket; observations in the
// overflow bucket resolve to Max.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * float64(h.Count)
	acc := 0.0
	lo := h.Min
	for _, b := range h.Buckets {
		if b.Count == 0 {
			if b.LE > lo {
				lo = math.Min(b.LE, h.Max)
			}
			continue
		}
		hi := math.Min(b.LE, h.Max)
		if lo > hi {
			lo = hi
		}
		if acc+float64(b.Count) >= target {
			frac := (target - acc) / float64(b.Count)
			return lo + frac*(hi-lo)
		}
		acc += float64(b.Count)
		lo = hi
	}
	return h.Max
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Safe to call
// concurrently with metric updates; a nil registry yields an empty
// (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot copies one histogram's current state into the frozen export
// form. Safe to call concurrently with Observe; a nil histogram yields
// an empty snapshot, so read-side consumers (the fleet autoscaler's p99
// gauge) stay nil-safe like the write side.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	hs := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]BucketSnapshot, len(h.bounds)),
	}
	if hs.Count > 0 {
		hs.Min = math.Float64frombits(h.minBits.Load())
		hs.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i, le := range h.bounds {
		hs.Buckets[i] = BucketSnapshot{LE: le, Count: h.buckets[i].Load()}
	}
	hs.Overflow = h.buckets[len(h.bounds)].Load()
	return hs
}

// WriteJSON writes the snapshot as indented JSON (the frozen schema).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ParseSnapshot decodes a snapshot produced by WriteJSON.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}

// WriteText writes the snapshot in an expvar-style line form, sorted
// by metric name:
//
//	counter memometer.snooped 1234
//	gauge   pipeline.raised 1
//	hist    pipeline.analysis_micros count=10 sum=42.0 min=1.2 max=9.9 p50=3.4 p99=9.8
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge   %s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "hist    %s count=%d sum=%.1f min=%.1f max=%.1f p50=%.1f p99=%.1f\n",
			name, h.Count, h.Sum, h.Min, h.Max, h.Quantile(0.50), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns the sorted key set of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DumpFile writes the JSON snapshot to path, with "-" meaning stdout —
// the cmd-level `-metrics <path|->` contract.
func (r *Registry) DumpFile(path string) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
