// Package kernelmap models the monitored kernel's .text segment: a
// synthetic symbol layout grouped into subsystems, plus a catalog of
// kernel *services* whose execution emits instruction-fetch bursts into
// the monitored region. It replaces the embedded Linux 3.4 image the
// paper monitored; what the detector needs from a kernel is only that
// each service touches a characteristic, stable set of addresses, which
// this model provides deterministically.
package kernelmap

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Paper .text bounds: 0xC0008000 .. 0xC02E7AA4 (3,013,284 bytes).
const (
	// TextBase is the paper's kernel .text base address.
	TextBase = uint64(0xC0008000)
	// TextEnd is one past the last monitored byte.
	TextEnd = uint64(0xC02E7AA4)
	// TextSize is the monitored region size in bytes.
	TextSize = TextEnd - TextBase
)

// ErrLayout wraps image construction failures.
var ErrLayout = errors.New("kernelmap: invalid layout")

// ErrUnknownService is returned when a service name is not in the image.
var ErrUnknownService = errors.New("kernelmap: unknown service")

// Subsystem names. Each gets a contiguous span of .text, mirroring how a
// real kernel's link order clusters related code.
const (
	SubEntry   = "entry"   // syscall/exception entry and exit
	SubSched   = "sched"   // scheduler core
	SubTimer   = "timer"   // timer and tick handling
	SubIRQ     = "irq"     // interrupt dispatch
	SubFS      = "fs"      // VFS and file I/O
	SubMM      = "mm"      // memory management
	SubProc    = "proc"    // process lifecycle (fork/exec/exit/wait)
	SubIPC     = "ipc"     // pipes, signals
	SubNet     = "net"     // network stack
	SubCrypto  = "crypto"  // kernel crypto
	SubModule  = "module"  // module loader
	SubLib     = "lib"     // kernel library routines (copy_to_user, etc.)
	SubDrivers = "drivers" // device drivers
	SubIdle    = "idle"    // cpu idle loop
)

// subsystemShares allocates fractions of .text to subsystems; they
// roughly track a small embedded kernel's layout and must sum to 1.
var subsystemShares = []struct {
	name  string
	share float64
}{
	{SubEntry, 0.02},
	{SubSched, 0.06},
	{SubTimer, 0.03},
	{SubIRQ, 0.03},
	{SubFS, 0.18},
	{SubMM, 0.12},
	{SubProc, 0.07},
	{SubIPC, 0.05},
	{SubNet, 0.16},
	{SubCrypto, 0.04},
	{SubModule, 0.04},
	{SubLib, 0.08},
	{SubDrivers, 0.11},
	{SubIdle, 0.01},
}

// HotSpot is a high-fetch-count location inside a function (a loop body);
// burst emission concentrates on hot spots, which is what instruction
// fetch histograms of real code look like.
type HotSpot struct {
	// Off is the byte offset of the spot within the function.
	Off uint64
	// W is the spot's share of the function's fetches; a function's spot
	// weights sum to 1.
	W float64
}

// Function is one kernel symbol.
type Function struct {
	Name      string
	Subsystem string
	Addr      uint64
	Size      uint64
	Spots     []HotSpot
}

// Image is the synthetic kernel text layout plus its service catalog.
type Image struct {
	Base, Size uint64
	funcs      []Function           // sorted by Addr
	byName     map[string]*Function // symbol lookup
	bySub      map[string][]*Function
	services   map[string]*Service
	seed       int64
}

// NewImage deterministically generates the synthetic kernel from a seed,
// using the paper's .text bounds.
func NewImage(seed int64) (*Image, error) {
	return NewImageSized(seed, TextBase, TextSize)
}

// NewImageSized generates an image over an arbitrary region, which keeps
// tests fast and lets benchmarks explore other region sizes.
func NewImageSized(seed int64, base, size uint64) (*Image, error) {
	if size < 1<<12 {
		return nil, fmt.Errorf("kernelmap: region size %d too small: %w", size, ErrLayout)
	}
	img := &Image{
		Base:     base,
		Size:     size,
		byName:   make(map[string]*Function),
		bySub:    make(map[string][]*Function),
		services: make(map[string]*Service),
		seed:     seed,
	}
	rng := rand.New(rand.NewSource(seed))

	addr := base
	end := base + size
	for _, ss := range subsystemShares {
		spanEnd := addr + uint64(float64(size)*ss.share)
		if spanEnd > end {
			spanEnd = end
		}
		if err := img.fillSubsystem(rng, ss.name, addr, spanEnd); err != nil {
			return nil, err
		}
		addr = spanEnd
	}
	// Any rounding remainder becomes padding (alignment/linker fill),
	// which real images have too.

	sort.Slice(img.funcs, func(i, j int) bool { return img.funcs[i].Addr < img.funcs[j].Addr })
	for i := range img.funcs {
		f := &img.funcs[i]
		img.byName[f.Name] = f
		img.bySub[f.Subsystem] = append(img.bySub[f.Subsystem], f)
	}
	if err := img.buildServices(rng); err != nil {
		return nil, err
	}
	return img, nil
}

// fillSubsystem packs the span [lo, hi) with generated functions.
func (img *Image) fillSubsystem(rng *rand.Rand, sub string, lo, hi uint64) error {
	if hi <= lo {
		return fmt.Errorf("kernelmap: subsystem %s span empty: %w", sub, ErrLayout)
	}
	addr := lo
	idx := 0
	for addr < hi {
		// Function sizes: log-uniform between 64 B and 8 KB, a rough
		// match for kernel symbol size distributions.
		sz := uint64(64) << rng.Intn(8) // 64..8192
		sz += uint64(rng.Intn(64)) * 4  // jitter, word aligned
		if addr+sz > hi {
			sz = hi - addr
		}
		if sz < 16 {
			break // tail too small for a function; leave as padding
		}
		f := Function{
			Name:      fmt.Sprintf("%s_fn_%04d", sub, idx),
			Subsystem: sub,
			Addr:      addr,
			Size:      sz,
			Spots:     genHotSpots(rng, sz),
		}
		img.funcs = append(img.funcs, f)
		addr += sz
		idx++
	}
	return nil
}

// genHotSpots places 1-4 loop locations in a function of the given size.
func genHotSpots(rng *rand.Rand, size uint64) []HotSpot {
	n := 1 + rng.Intn(4)
	spots := make([]HotSpot, n)
	total := 0.0
	for i := range spots {
		off := uint64(rng.Int63n(int64(size)))
		w := 0.2 + rng.Float64()
		spots[i] = HotSpot{Off: off, W: w}
		total += w
	}
	for i := range spots {
		spots[i].W /= total
	}
	return spots
}

// Functions returns the symbols sorted by address.
func (img *Image) Functions() []Function {
	out := make([]Function, len(img.funcs))
	copy(out, img.funcs)
	return out
}

// Lookup returns the function containing addr, or false if addr falls in
// padding or outside the image.
func (img *Image) Lookup(addr uint64) (*Function, bool) {
	i := sort.Search(len(img.funcs), func(i int) bool {
		return img.funcs[i].Addr+img.funcs[i].Size > addr
	})
	if i == len(img.funcs) {
		return nil, false
	}
	f := &img.funcs[i]
	if addr < f.Addr {
		return nil, false
	}
	return f, true
}

// FunctionByName returns the named symbol.
func (img *Image) FunctionByName(name string) (*Function, bool) {
	f, ok := img.byName[name]
	return f, ok
}

// SubsystemFunctions returns the symbols of one subsystem, by address.
func (img *Image) SubsystemFunctions(sub string) []*Function {
	return img.bySub[sub]
}

// pick returns n deterministic representative functions from a
// subsystem, spread across its span.
func (img *Image) pick(sub string, n int) ([]*Function, error) {
	fns := img.bySub[sub]
	if len(fns) == 0 {
		return nil, fmt.Errorf("kernelmap: subsystem %s has no functions: %w", sub, ErrLayout)
	}
	if n > len(fns) {
		n = len(fns)
	}
	out := make([]*Function, n)
	for i := 0; i < n; i++ {
		out[i] = fns[i*len(fns)/n]
	}
	return out, nil
}
