package kernelmap

import (
	"fmt"
	"math/rand"
	"sort"
)

// Linux/ARM loads kernel modules below the kernel image; the paper's
// limitation (iv) notes its detector cannot see execution there because
// only .text is monitored. These constants model that module area so a
// second monitored region can cover it.
const (
	// ModuleBase is the module area base address (ARM convention).
	ModuleBase = uint64(0xBF000000)
	// ModuleSize is the modeled module area size.
	ModuleSize = uint64(1 << 20) // 1 MB
)

// RegisterModuleService installs a synthetic kernel service whose code
// lives in the *module area*, outside .text — the execution profile of a
// loaded LKM (e.g. a rootkit's hooked handler). The service joins the
// image's catalog under the given name; emitting it produces bursts the
// .text Memometer filters out but a module-region monitor sees.
//
// offset places the module within the area (modules load at distinct
// offsets); the layout must fit inside ModuleSize.
func (img *Image) RegisterModuleService(name string, offset uint64, ktime int64, fetches float64, seed int64) (*Service, error) {
	if name == "" {
		return nil, fmt.Errorf("kernelmap: empty module service name: %w", ErrLayout)
	}
	if _, exists := img.services[name]; exists {
		return nil, fmt.Errorf("kernelmap: service %q already registered: %w", name, ErrLayout)
	}
	rng := rand.New(rand.NewSource(seed))
	size := uint64(2048 + rng.Intn(6144)) // module .text: 2-8 KB
	if offset+size > ModuleSize {
		return nil, fmt.Errorf("kernelmap: module at offset %#x size %d exceeds area: %w", offset, size, ErrLayout)
	}
	fn := &Function{
		Name:      name + "_code",
		Subsystem: "lkm",
		Addr:      ModuleBase + offset,
		Size:      size,
		Spots:     genHotSpots(rng, size),
	}
	svc := &Service{
		Name:                 name,
		KernelTime:           ktime,
		FetchesPerInvocation: fetches,
		parts:                []part{{fn: fn, w: 1}},
	}
	img.services[name] = svc
	return svc, nil
}

// InModuleArea reports whether the service's code lives in the module
// area rather than .text.
func (s *Service) InModuleArea() bool {
	return len(s.parts) > 0 && s.parts[0].fn.Addr >= ModuleBase
}

// BaseServiceNames returns the sorted names of services whose code lives
// inside .text — the clean kernel's catalog, excluding module-area
// registrations such as rootkit hooks. The syscall-frequency channel
// uses this as its fixed vocabulary so that module-space executions fall
// into the "other" bucket instead of earning buckets of their own.
func (img *Image) BaseServiceNames() []string {
	out := make([]string, 0, len(img.services))
	for name, svc := range img.services {
		if svc.InModuleArea() {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
