package kernelmap

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/memheatmap/mhm/internal/trace"
)

func mustImage(t *testing.T) *Image {
	t.Helper()
	img, err := NewImage(1)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPaperTextBounds(t *testing.T) {
	if TextSize != 3013284 {
		t.Errorf("TextSize = %d, want 3013284 (paper Fig. 1)", TextSize)
	}
	img := mustImage(t)
	if img.Base != TextBase || img.Size != TextSize {
		t.Errorf("image bounds %#x/%d", img.Base, img.Size)
	}
}

func TestLayoutNonOverlappingAndInBounds(t *testing.T) {
	img := mustImage(t)
	fns := img.Functions()
	if len(fns) < 200 {
		t.Fatalf("only %d functions; expected a kernel-sized symbol table", len(fns))
	}
	var prevEnd uint64
	for i, f := range fns {
		if f.Addr < img.Base || f.Addr+f.Size > img.Base+img.Size {
			t.Fatalf("function %s out of bounds: %#x+%d", f.Name, f.Addr, f.Size)
		}
		if i > 0 && f.Addr < prevEnd {
			t.Fatalf("function %s overlaps previous (addr %#x < prev end %#x)", f.Name, f.Addr, prevEnd)
		}
		if f.Size == 0 {
			t.Fatalf("function %s has zero size", f.Name)
		}
		prevEnd = f.Addr + f.Size
	}
}

func TestHotSpotsInsideFunctions(t *testing.T) {
	img := mustImage(t)
	for _, f := range img.Functions() {
		if len(f.Spots) == 0 {
			t.Fatalf("function %s has no hot spots", f.Name)
		}
		wsum := 0.0
		for _, s := range f.Spots {
			if s.Off >= f.Size {
				t.Fatalf("function %s: hot spot at %d beyond size %d", f.Name, s.Off, f.Size)
			}
			wsum += s.W
		}
		if math.Abs(wsum-1) > 1e-9 {
			t.Fatalf("function %s: spot weights sum to %g", f.Name, wsum)
		}
	}
}

func TestLookup(t *testing.T) {
	img := mustImage(t)
	fns := img.Functions()
	for _, f := range []Function{fns[0], fns[len(fns)/2], fns[len(fns)-1]} {
		got, ok := img.Lookup(f.Addr)
		if !ok || got.Name != f.Name {
			t.Errorf("Lookup(%#x) = %v, %v; want %s", f.Addr, got, ok, f.Name)
		}
		got, ok = img.Lookup(f.Addr + f.Size - 1)
		if !ok || got.Name != f.Name {
			t.Errorf("Lookup(last byte of %s) failed", f.Name)
		}
	}
	if _, ok := img.Lookup(img.Base - 1); ok {
		t.Error("Lookup below base succeeded")
	}
	if _, ok := img.Lookup(img.Base + img.Size + 100); ok {
		t.Error("Lookup above end succeeded")
	}
	if _, ok := img.FunctionByName(fns[3].Name); !ok {
		t.Error("FunctionByName failed for existing symbol")
	}
	if _, ok := img.FunctionByName("no_such_symbol"); ok {
		t.Error("FunctionByName invented a symbol")
	}
}

func TestImageDeterminism(t *testing.T) {
	a, err := NewImage(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewImage(7)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Functions(), b.Functions()
	if len(fa) != len(fb) {
		t.Fatalf("different function counts: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Name != fb[i].Name || fa[i].Addr != fb[i].Addr || fa[i].Size != fb[i].Size {
			t.Fatalf("function %d differs", i)
		}
	}
	c, err := NewImage(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Functions()) == len(fa) {
		// Counts could coincide; compare layout details too.
		same := true
		for i, f := range c.Functions() {
			if f.Addr != fa[i].Addr || f.Size != fa[i].Size {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical layouts")
		}
	}
}

func TestNewImageSizedRejectsTiny(t *testing.T) {
	if _, err := NewImageSized(1, 0, 100); !errors.Is(err, ErrLayout) {
		t.Errorf("tiny image: %v", err)
	}
}

func TestServiceCatalogComplete(t *testing.T) {
	img := mustImage(t)
	wanted := []string{
		SvcSyscallEntry, SvcRead, SvcWrite, SvcOpen, SvcClose, SvcFork,
		SvcExec, SvcExit, SvcWait, SvcPersonality, SvcKill, SvcMmap,
		SvcPipe, SvcSocket, SvcModuleLoad, SvcSchedTick, SvcCtxSwitch,
		SvcIdleLoop, SvcPageFault,
	}
	for _, name := range wanted {
		svc, err := img.Service(name)
		if err != nil {
			t.Errorf("missing service %s: %v", name, err)
			continue
		}
		if svc.FetchesPerInvocation <= 0 {
			t.Errorf("service %s has no fetch budget", name)
		}
		if len(svc.TouchedFunctions()) == 0 {
			t.Errorf("service %s touches no functions", name)
		}
	}
	if len(img.ServiceNames()) != len(wanted) {
		t.Errorf("catalog has %d services, want %d", len(img.ServiceNames()), len(wanted))
	}
	if _, err := img.Service("bogus"); !errors.Is(err, ErrUnknownService) {
		t.Errorf("unknown service: %v", err)
	}
}

func TestEmitConservation(t *testing.T) {
	// Total emitted fetches ≈ FetchesPerInvocation * scale (within the
	// 5% noise plus rounding).
	img := mustImage(t)
	svc, err := img.Service(SvcRead)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, scale := range []float64{1, 0.5, 3.25} {
		events := svc.Emit(rng, 1000, scale, nil)
		var total float64
		for _, e := range events {
			if e.Time != 1000 {
				t.Errorf("event time %d, want 1000", e.Time)
			}
			total += float64(e.Count)
		}
		want := svc.FetchesPerInvocation * scale
		if math.Abs(total-want)/want > 0.10 {
			t.Errorf("scale %g: emitted %g fetches, want ≈%g", scale, total, want)
		}
	}
}

func TestEmitAddressesInsideImage(t *testing.T) {
	img := mustImage(t)
	rng := rand.New(rand.NewSource(4))
	for _, name := range img.ServiceNames() {
		svc, err := img.Service(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range svc.Emit(rng, 0, 1, nil) {
			if e.Addr < img.Base || e.Addr >= img.Base+img.Size {
				t.Errorf("service %s emitted out-of-image address %#x", name, e.Addr)
			}
			fn, ok := img.Lookup(e.Addr)
			if !ok {
				t.Errorf("service %s emitted padding address %#x", name, e.Addr)
				continue
			}
			// The address must be one of the function's hot spots.
			found := false
			for _, s := range fn.Spots {
				if fn.Addr+s.Off == e.Addr {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("service %s: address %#x is not a hot spot of %s", name, e.Addr, fn.Name)
			}
		}
	}
}

func TestEmitZeroOrNegativeScale(t *testing.T) {
	img := mustImage(t)
	svc, _ := img.Service(SvcWrite)
	if got := svc.Emit(nil, 0, 0, nil); len(got) != 0 {
		t.Errorf("zero scale emitted %d events", len(got))
	}
	if got := svc.Emit(nil, 0, -1, nil); len(got) != 0 {
		t.Errorf("negative scale emitted %d events", len(got))
	}
}

func TestEmitNilRngIsDeterministic(t *testing.T) {
	img := mustImage(t)
	svc, _ := img.Service(SvcOpen)
	a := svc.Emit(nil, 5, 2, nil)
	b := svc.Emit(nil, 5, 2, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length with nil rng")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDistinctServicesTouchDistinctCells(t *testing.T) {
	// The detector relies on services having different footprints: the
	// fetch-weighted cell profiles of read and fork must differ
	// substantially at the paper's 2 KB granularity.
	img := mustImage(t)
	profile := func(name string) map[uint64]float64 {
		svc, err := img.Service(name)
		if err != nil {
			t.Fatal(err)
		}
		out := map[uint64]float64{}
		var total float64
		for _, e := range svc.Emit(nil, 0, 1, nil) {
			cell := (e.Addr - img.Base) / 2048
			out[cell] += float64(e.Count)
			total += float64(e.Count)
		}
		for k := range out {
			out[k] /= total
		}
		return out
	}
	read := profile(SvcRead)
	fork := profile(SvcFork)
	overlap := 0.0
	for cell, w := range read {
		if fw, ok := fork[cell]; ok {
			overlap += math.Min(w, fw)
		}
	}
	if overlap > 0.5 {
		t.Errorf("read/fork cell overlap %.2f; footprints too similar for detection", overlap)
	}
}

func TestEmitAppendsToDst(t *testing.T) {
	img := mustImage(t)
	svc, _ := img.Service(SvcClose)
	pre := []trace.Access{{Time: 1, Addr: 2, Count: 3}}
	out := svc.Emit(nil, 0, 1, pre)
	if len(out) <= 1 || out[0] != pre[0] {
		t.Error("Emit did not append to dst")
	}
}

func TestEmitScaleProportionalProperty(t *testing.T) {
	// Property (noise-free): doubling scale doubles every burst within
	// rounding.
	img := mustImage(t)
	f := func(seedIdx uint8) bool {
		names := img.ServiceNames()
		svc, err := img.Service(names[int(seedIdx)%len(names)])
		if err != nil {
			return false
		}
		one := svc.Emit(nil, 0, 1, nil)
		two := svc.Emit(nil, 0, 2, nil)
		if len(two) < len(one) {
			return false
		}
		var t1, t2 float64
		for _, e := range one {
			t1 += float64(e.Count)
		}
		for _, e := range two {
			t2 += float64(e.Count)
		}
		return math.Abs(t2-2*t1) <= float64(len(one)+len(two))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSubsystemFunctions(t *testing.T) {
	img := mustImage(t)
	fns := img.SubsystemFunctions(SubFS)
	if len(fns) == 0 {
		t.Fatal("fs subsystem empty")
	}
	for _, f := range fns {
		if f.Subsystem != SubFS {
			t.Errorf("function %s in wrong subsystem %s", f.Name, f.Subsystem)
		}
	}
	if got := img.SubsystemFunctions("no-such-subsystem"); len(got) != 0 {
		t.Errorf("unknown subsystem returned %d functions", len(got))
	}
}

func TestRegisterModuleService(t *testing.T) {
	img, err := NewImage(3)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := img.RegisterModuleService("evil_hook", 0x1000, 40, 900, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The catalog resolves it.
	got, err := img.Service("evil_hook")
	if err != nil || got != svc {
		t.Fatalf("catalog lookup: %v", err)
	}
	// Its emission lands entirely inside the module area, outside .text.
	for _, a := range svc.Emit(nil, 0, 1, nil) {
		if a.Addr < ModuleBase || a.Addr >= ModuleBase+ModuleSize {
			t.Errorf("module service emitted %#x outside the module area", a.Addr)
		}
		if a.Addr >= img.Base && a.Addr < img.Base+img.Size {
			t.Errorf("module service emitted %#x inside .text", a.Addr)
		}
	}
	// Duplicate registration is rejected.
	if _, err := img.RegisterModuleService("evil_hook", 0x8000, 40, 900, 7); !errors.Is(err, ErrLayout) {
		t.Errorf("duplicate: %v", err)
	}
	// Invalid placements rejected.
	if _, err := img.RegisterModuleService("", 0, 1, 1, 1); !errors.Is(err, ErrLayout) {
		t.Errorf("empty name: %v", err)
	}
	if _, err := img.RegisterModuleService("too_far", ModuleSize-16, 1, 1, 1); !errors.Is(err, ErrLayout) {
		t.Errorf("overflow: %v", err)
	}
}
