package kernelmap

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/memheatmap/mhm/internal/trace"
)

// Service names used by the workload and attack models. Every name here
// exists in any image produced by NewImage/NewImageSized.
const (
	SvcSyscallEntry = "syscall_entry" // common entry/exit path
	SvcRead         = "sys_read"
	SvcWrite        = "sys_write"
	SvcOpen         = "sys_open"
	SvcClose        = "sys_close"
	SvcFork         = "sys_fork"
	SvcExec         = "sys_execve"
	SvcExit         = "sys_exit"
	SvcWait         = "sys_wait"
	SvcPersonality  = "sys_personality" // the ASLR-disable shellcode path
	SvcKill         = "sys_kill"
	SvcMmap         = "sys_mmap"
	SvcPipe         = "sys_pipe"
	SvcSocket       = "sys_socket"
	SvcModuleLoad   = "init_module" // insmod path: loader + relocation
	SvcSchedTick    = "sched_tick"  // timer interrupt + scheduler
	SvcCtxSwitch    = "context_switch"
	SvcIdleLoop     = "cpu_idle"
	SvcPageFault    = "page_fault"
)

// part is one function's contribution to a service.
type part struct {
	fn *Function
	w  float64 // share of the service's fetches; parts sum to 1
}

// Service is a kernel operation: a weighted set of functions it executes.
// Invoking the service emits fetch bursts at the functions' hot spots.
type Service struct {
	Name string
	// KernelTime is the nominal in-kernel execution time of one
	// invocation, in microseconds.
	KernelTime int64
	// FetchesPerInvocation is the nominal number of monitored-region
	// instruction fetches one invocation produces.
	FetchesPerInvocation float64
	parts                []part
}

// serviceSpec drives catalog construction.
type serviceSpec struct {
	name    string
	ktime   int64
	fetches float64
	// subs lists (subsystem, weight, howMany functions) triples.
	subs []struct {
		sub string
		w   float64
		n   int
	}
}

func sspec(name string, ktime int64, fetches float64, subs ...struct {
	sub string
	w   float64
	n   int
}) serviceSpec {
	return serviceSpec{name: name, ktime: ktime, fetches: fetches, subs: subs}
}

func sw(sub string, w float64, n int) struct {
	sub string
	w   float64
	n   int
} {
	return struct {
		sub string
		w   float64
		n   int
	}{sub, w, n}
}

// buildServices assembles the fixed service catalog over the generated
// symbols. Fetch budgets are sized so a 78%-utilized 10 ms interval lands
// in the paper's Fig. 9 traffic range (~10⁴–10⁵ fetches).
func (img *Image) buildServices(rng *rand.Rand) error {
	specs := []serviceSpec{
		sspec(SvcSyscallEntry, 2, 220, sw(SubEntry, 1.0, 4)),
		sspec(SvcRead, 18, 1900, sw(SubEntry, 0.12, 3), sw(SubFS, 0.58, 6), sw(SubLib, 0.20, 3), sw(SubMM, 0.10, 2)),
		sspec(SvcWrite, 16, 1700, sw(SubEntry, 0.12, 3), sw(SubFS, 0.56, 5), sw(SubLib, 0.22, 3), sw(SubMM, 0.10, 2)),
		sspec(SvcOpen, 30, 2600, sw(SubEntry, 0.10, 3), sw(SubFS, 0.70, 8), sw(SubMM, 0.12, 2), sw(SubLib, 0.08, 2)),
		sspec(SvcClose, 10, 900, sw(SubEntry, 0.15, 3), sw(SubFS, 0.70, 4), sw(SubLib, 0.15, 2)),
		sspec(SvcFork, 120, 9000, sw(SubEntry, 0.05, 3), sw(SubProc, 0.45, 7), sw(SubMM, 0.35, 6), sw(SubSched, 0.15, 3)),
		sspec(SvcExec, 200, 15000, sw(SubEntry, 0.04, 3), sw(SubProc, 0.30, 6), sw(SubFS, 0.26, 6), sw(SubMM, 0.30, 6), sw(SubLib, 0.10, 3)),
		sspec(SvcExit, 80, 6000, sw(SubEntry, 0.05, 3), sw(SubProc, 0.50, 6), sw(SubMM, 0.30, 5), sw(SubSched, 0.15, 3)),
		sspec(SvcWait, 25, 1800, sw(SubEntry, 0.12, 3), sw(SubProc, 0.66, 4), sw(SubSched, 0.22, 2)),
		sspec(SvcPersonality, 8, 700, sw(SubEntry, 0.25, 3), sw(SubProc, 0.55, 3), sw(SubMM, 0.20, 2)),
		sspec(SvcKill, 15, 1200, sw(SubEntry, 0.15, 3), sw(SubIPC, 0.45, 3), sw(SubProc, 0.25, 3), sw(SubSched, 0.15, 2)),
		sspec(SvcMmap, 40, 3200, sw(SubEntry, 0.08, 3), sw(SubMM, 0.80, 8), sw(SubLib, 0.12, 2)),
		sspec(SvcPipe, 22, 1600, sw(SubEntry, 0.12, 3), sw(SubIPC, 0.62, 4), sw(SubFS, 0.26, 3)),
		sspec(SvcSocket, 35, 2800, sw(SubEntry, 0.10, 3), sw(SubNet, 0.78, 8), sw(SubMM, 0.12, 2)),
		sspec(SvcModuleLoad, 900, 70000, sw(SubEntry, 0.02, 3), sw(SubModule, 0.60, 8), sw(SubMM, 0.22, 6), sw(SubFS, 0.10, 4), sw(SubLib, 0.06, 3)),
		sspec(SvcSchedTick, 5, 800, sw(SubIRQ, 0.30, 3), sw(SubTimer, 0.40, 4), sw(SubSched, 0.30, 4)),
		sspec(SvcCtxSwitch, 4, 450, sw(SubSched, 0.70, 4), sw(SubMM, 0.30, 2)),
		sspec(SvcIdleLoop, 0, 2600, sw(SubIdle, 0.85, 2), sw(SubSched, 0.15, 2)), // fetches per idle millisecond
		sspec(SvcPageFault, 12, 1000, sw(SubEntry, 0.10, 2), sw(SubMM, 0.75, 6), sw(SubLib, 0.15, 2)),
	}
	for _, sp := range specs {
		svc := &Service{Name: sp.name, KernelTime: sp.ktime, FetchesPerInvocation: sp.fetches}
		totalW := 0.0
		for _, s := range sp.subs {
			fns, err := img.pick(s.sub, s.n)
			if err != nil {
				return fmt.Errorf("kernelmap: service %s: %w", sp.name, err)
			}
			// Split the subsystem weight across its functions with a
			// deterministic skew (front-loaded, like a call chain where
			// the first callee dominates).
			skew := make([]float64, len(fns))
			sum := 0.0
			for i := range fns {
				skew[i] = 1.0 / float64(i+1)
				sum += skew[i]
			}
			for i, fn := range fns {
				w := s.w * skew[i] / sum
				svc.parts = append(svc.parts, part{fn: fn, w: w})
				totalW += w
			}
		}
		// Normalize so parts sum to exactly 1.
		for i := range svc.parts {
			svc.parts[i].w /= totalW
		}
		img.services[sp.name] = svc
	}
	return nil
}

// Service returns the named service.
func (img *Image) Service(name string) (*Service, error) {
	s, ok := img.services[name]
	if !ok {
		return nil, fmt.Errorf("kernelmap: %q: %w", name, ErrUnknownService)
	}
	return s, nil
}

// ServiceNames returns the catalog's service names, sorted.
func (img *Image) ServiceNames() []string {
	out := make([]string, 0, len(img.services))
	for name := range img.services {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Emit produces the fetch bursts of `scale` invocations of the service at
// time t. scale may be fractional (a partially executed syscall segment
// emits a proportional share). rng adds the ±5% per-burst measurement
// noise that makes training MHMs vary like real captures; pass a
// deterministic source for reproducibility. The bursts are appended to
// dst and returned.
func (s *Service) Emit(rng *rand.Rand, t int64, scale float64, dst []trace.Access) []trace.Access {
	if scale <= 0 {
		return dst
	}
	budget := s.FetchesPerInvocation * scale
	for _, p := range s.parts {
		fnBudget := budget * p.w
		for _, spot := range p.fn.Spots {
			f := fnBudget * spot.W
			if rng != nil {
				f *= 1 + 0.05*(2*rng.Float64()-1)
			}
			count := uint32(f + 0.5)
			if count == 0 {
				continue
			}
			dst = append(dst, trace.Access{
				Time:  t,
				Addr:  p.fn.Addr + spot.Off,
				Count: count,
			})
		}
	}
	return dst
}

// TouchedFunctions lists the functions a service executes, heaviest
// first, for introspection and tests.
func (s *Service) TouchedFunctions() []*Function {
	parts := append([]part(nil), s.parts...)
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].w > parts[j].w })
	out := make([]*Function, len(parts))
	for i, p := range parts {
		out[i] = p.fn
	}
	return out
}
