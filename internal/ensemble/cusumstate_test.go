package ensemble

import (
	"math"
	"math/rand"
	"testing"
)

// TestCusumStateMatchesBatch pins the streaming==batch bit-identity
// contract: feeding a z sequence through Step reproduces Cusum exactly,
// including NaN/Inf inputs and the clamps.
func TestCusumStateMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	zs := make([]float64, 500)
	for i := range zs {
		zs[i] = 3 * rng.NormFloat64()
	}
	zs[17] = math.NaN()
	zs[99] = math.Inf(1)
	zs[100] = math.Inf(-1)
	zs[250] = 1e12
	for _, k := range []float64{DriftK, 0.25, math.NaN()} {
		batch := Cusum(zs, k)
		var st CusumState
		for i, z := range zs {
			got := st.Step(z, k)
			if math.Float64bits(got) != math.Float64bits(batch[i]) {
				t.Fatalf("k=%v: step %d = %v, batch = %v", k, i, got, batch[i])
			}
		}
	}
}

// TestCusumStateReset checks the accumulator clears for re-baselining.
func TestCusumStateReset(t *testing.T) {
	var st CusumState
	st.Step(10, DriftK)
	if st.S == 0 {
		t.Fatal("accumulator did not rise")
	}
	st.Reset()
	if st.S != 0 {
		t.Fatalf("after Reset S = %v", st.S)
	}
}
