// Package ensemble fuses the two detection channels — the MHM density
// detector (internal/core) and the syscall-frequency detector
// (internal/syscalls) — into one anomaly score. Each channel's raw
// score is a log-density-like value where lower means more anomalous;
// fusion first standardizes both against their clean calibration
// distributions (so a channel's z-score says "how many clean standard
// deviations below normal"), then combines the z-scores with a max or
// weighted-sum rule. Thresholds on the fused score are calibrated on
// clean data, exactly like the single detectors' θ_p.
package ensemble

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/stats"
)

// ErrConfig wraps invalid calibration inputs.
var ErrConfig = errors.New("ensemble: invalid configuration")

// Combiner selects the fusion rule.
type Combiner int

const (
	// Max fuses by taking the strongest channel's evidence — the "any
	// detector fires" rule.
	Max Combiner = iota
	// WeightedSum averages the channels' evidence with the fuser's
	// weights — the "both detectors agree a little" rule.
	WeightedSum
)

// String returns the combiner name used in reports.
func (c Combiner) String() string {
	switch c {
	case Max:
		return "ensemble-max"
	case WeightedSum:
		return "ensemble-wsum"
	default:
		return fmt.Sprintf("Combiner(%d)", int(c))
	}
}

// zClamp bounds sanitized z-scores so ±Inf raw scores stay finite and
// ordered instead of poisoning downstream sums.
const zClamp = 1e6

// Channel standardizes one detector's raw scores against its clean
// calibration distribution.
type Channel struct {
	// Mean and Std describe the clean score distribution.
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

// FitChannel estimates the clean distribution of a detector's scores.
func FitChannel(clean []float64) (Channel, error) {
	if len(clean) < 2 {
		return Channel{}, fmt.Errorf("ensemble: %d clean scores: %w", len(clean), ErrConfig)
	}
	var w stats.Welford
	for _, s := range clean {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			continue
		}
		w.Add(s)
	}
	if w.N() < 2 {
		return Channel{}, fmt.Errorf("ensemble: fewer than 2 finite clean scores: %w", ErrConfig)
	}
	sd := w.StdDev()
	if sd < 1e-9 {
		sd = 1e-9
	}
	return Channel{Mean: w.Mean(), Std: sd}, nil
}

// Z converts a raw score (lower = more anomalous) into an anomaly
// z-score (higher = more anomalous). NaN maps to 0 (no evidence);
// ±Inf clamp to ∓zClamp, preserving monotonicity.
func (c Channel) Z(score float64) float64 {
	if math.IsNaN(score) {
		return 0
	}
	std := c.Std
	if !(std > 0) || math.IsNaN(std) || math.IsInf(std, 0) {
		std = 1
	}
	z := (c.Mean - score) / std
	if math.IsNaN(z) {
		return 0
	}
	if z > zClamp {
		return zClamp
	}
	if z < -zClamp {
		return -zClamp
	}
	return z
}

// FuseMax combines two anomaly z-scores with the max rule. NaN inputs
// contribute no evidence (treated as 0); the result is monotone
// nondecreasing in each finite input.
func FuseMax(z1, z2 float64) float64 {
	z1, z2 = sanitizeZ(z1), sanitizeZ(z2)
	if z1 > z2 {
		return z1
	}
	return z2
}

// FuseWeighted combines two anomaly z-scores with the weighted-sum
// rule. Non-positive or non-finite weights are replaced by equal
// weights; the result is monotone nondecreasing in each finite input.
func FuseWeighted(w1, z1, w2, z2 float64) float64 {
	if !(w1 > 0) || !(w2 > 0) || math.IsInf(w1, 0) || math.IsInf(w2, 0) {
		w1, w2 = 0.5, 0.5
	}
	s := w1 + w2
	return (w1*sanitizeZ(z1) + w2*sanitizeZ(z2)) / s
}

// DriftK is the one-sided CUSUM drift allowance in channel-z units:
// each interval the accumulator keeps only the evidence in excess of
// DriftK, so mean-zero clean channel noise decays back to the floor
// while a persistent positive shift — however small per interval —
// integrates without bound. One clean standard deviation of allowance
// pins the clean accumulator near zero (excursions need sustained >1σ
// runs) yet still catches displacements far below any per-interval θ_p.
const DriftK = 1.0

// DriftCap winsorizes the accumulator's per-interval input. The clean
// score distributions are heavy-tailed (a single clean interval can hit
// 8σ), and an uncapped lone spike would take ~8 intervals to drain back
// out of the accumulator, smearing one outlier — which the instant
// channels already handle — across a whole stretch of clean intervals.
// Capped at DriftCap, a spike contributes at most DriftCap−DriftK and
// decays within two intervals; persistent shifts are unaffected.
const DriftCap = 3.0

// Cusum computes the one-sided CUSUM of an anomaly z-score series:
// s[i] = max(0, s[i-1] + min(zs[i], DriftCap) − k), capped at zClamp.
// This is the drift statistic behind FuseSeriesDrift: it trades a few
// intervals of latency for sensitivity to sub-threshold persistent
// displacement. A non-finite k falls back to DriftK.
//
//mhm:deterministic
func Cusum(zs []float64, k float64) []float64 {
	if math.IsNaN(k) || math.IsInf(k, 0) {
		k = DriftK
	}
	out := make([]float64, len(zs))
	s := 0.0
	for i, z := range zs {
		z = sanitizeZ(z)
		if z > DriftCap {
			z = DriftCap
		}
		s += z - k
		if s < 0 {
			s = 0
		} else if s > zClamp {
			s = zClamp
		}
		out[i] = s
	}
	return out
}

// sanitizeZ maps NaN to 0 and clamps infinities so every fused score is
// finite.
func sanitizeZ(z float64) float64 {
	if math.IsNaN(z) {
		return 0
	}
	if z > zClamp {
		return zClamp
	}
	if z < -zClamp {
		return -zClamp
	}
	return z
}

// Threshold is one calibrated decision boundary on the fused anomaly
// score: a fused score ABOVE Theta is anomalous at expected
// false-positive rate P (note the flip relative to the log-density
// channels — fused scores grow with anomaly strength).
type Threshold struct {
	P     float64 `json:"p"`
	Theta float64 `json:"theta"`
}

// Fuser holds calibrated channels, weights and per-combiner thresholds.
type Fuser struct {
	MHM     Channel `json:"mhm"`
	Syscall Channel `json:"syscall"`
	// Weights are the weighted-sum combiner's (MHM, syscall) weights.
	Weights [2]float64 `json:"weights"`
	// DriftMHM and DriftSyscall hold the per-channel clean CUSUM
	// calibrations. Each is fitted on the NEGATED clean drift values so
	// Channel's lower-is-anomalous orientation applies (the CUSUM
	// itself grows with anomaly strength); score with Z(−cusum). Keeping
	// one accumulator per channel means noise on one channel never
	// dilutes a slow ramp on the other.
	DriftMHM     Channel `json:"drift_mhm"`
	DriftSyscall Channel `json:"drift_syscall"`
	// Thresholds maps each combiner to its calibrated boundaries,
	// sorted by P ascending. They are placed on the drift-augmented
	// statistic of FuseSeriesDrift.
	Thresholds map[Combiner][]Threshold `json:"-"`
}

// Calibrate fits both channels on clean raw scores (paired per
// interval), computes each combiner's fused clean distribution and its
// CUSUM drift channel, and places upper-quantile thresholds on the
// drift-augmented statistic: at p, a clean interval's FuseSeriesDrift
// score exceeds θ with probability ≈ p.
//
//mhm:deterministic
func Calibrate(cleanMHM, cleanSyscall []float64, quantiles []float64) (*Fuser, error) {
	if len(cleanMHM) != len(cleanSyscall) {
		return nil, fmt.Errorf("ensemble: %d MHM vs %d syscall clean scores: %w",
			len(cleanMHM), len(cleanSyscall), ErrConfig)
	}
	mhm, err := FitChannel(cleanMHM)
	if err != nil {
		return nil, fmt.Errorf("ensemble: MHM channel: %w", err)
	}
	sys, err := FitChannel(cleanSyscall)
	if err != nil {
		return nil, fmt.Errorf("ensemble: syscall channel: %w", err)
	}
	f := &Fuser{
		MHM:        mhm,
		Syscall:    sys,
		Weights:    [2]float64{0.5, 0.5},
		Thresholds: map[Combiner][]Threshold{},
	}
	fitDrift := func(ch Channel, clean []float64) (Channel, error) {
		zs := make([]float64, len(clean))
		for i, s := range clean {
			zs[i] = ch.Z(s)
		}
		cs := Cusum(zs, DriftK)
		for i, c := range cs {
			cs[i] = -c
		}
		return FitChannel(cs)
	}
	if f.DriftMHM, err = fitDrift(mhm, cleanMHM); err != nil {
		return nil, fmt.Errorf("ensemble: MHM drift channel: %w", err)
	}
	if f.DriftSyscall, err = fitDrift(sys, cleanSyscall); err != nil {
		return nil, fmt.Errorf("ensemble: syscall drift channel: %w", err)
	}
	for _, comb := range []Combiner{Max, WeightedSum} {
		final, err := f.FuseSeriesDrift(comb, cleanMHM, cleanSyscall)
		if err != nil {
			return nil, err
		}
		var ths []Threshold
		for _, p := range quantiles {
			if p <= 0 || p >= 1 {
				return nil, fmt.Errorf("ensemble: quantile %g out of (0,1): %w", p, ErrConfig)
			}
			theta, err := stats.Quantile(final, 1-p)
			if err != nil {
				return nil, err
			}
			ths = append(ths, Threshold{P: p, Theta: theta})
		}
		sort.Slice(ths, func(i, j int) bool { return ths[i].P < ths[j].P })
		f.Thresholds[comb] = ths
	}
	return f, nil
}

// Fuse standardizes the two raw scores (lower = more anomalous) and
// combines them; the result grows with anomaly strength.
//
//mhm:deterministic
func (f *Fuser) Fuse(comb Combiner, mhmScore, syscallScore float64) float64 {
	z1, z2 := f.MHM.Z(mhmScore), f.Syscall.Z(syscallScore)
	if comb == WeightedSum {
		return FuseWeighted(f.Weights[0], z1, f.Weights[1], z2)
	}
	return FuseMax(z1, z2)
}

// FuseSeries fuses paired score series.
//
//mhm:deterministic
func (f *Fuser) FuseSeries(comb Combiner, mhmScores, syscallScores []float64) ([]float64, error) {
	if len(mhmScores) != len(syscallScores) {
		return nil, fmt.Errorf("ensemble: %d MHM vs %d syscall scores: %w",
			len(mhmScores), len(syscallScores), ErrConfig)
	}
	out := make([]float64, len(mhmScores))
	for i := range mhmScores {
		out[i] = f.Fuse(comb, mhmScores[i], syscallScores[i])
	}
	return out, nil
}

// FuseSeriesDrift fuses paired score series and overlays the drift
// evidence: out[i] = max(fused[i], drift[i]), where drift combines —
// with the same combiner rule — the standardized per-channel CUSUM
// accumulators. Calibrate places its thresholds on exactly this
// statistic. A fuser without drift calibration returns the plain fused
// series.
//
//mhm:deterministic
func (f *Fuser) FuseSeriesDrift(comb Combiner, mhmScores, syscallScores []float64) ([]float64, error) {
	fused, err := f.FuseSeries(comb, mhmScores, syscallScores)
	if err != nil {
		return nil, err
	}
	if !(f.DriftMHM.Std > 0) || !(f.DriftSyscall.Std > 0) {
		return fused, nil
	}
	zm := make([]float64, len(mhmScores))
	zs := make([]float64, len(syscallScores))
	for i := range mhmScores {
		zm[i] = f.MHM.Z(mhmScores[i])
		zs[i] = f.Syscall.Z(syscallScores[i])
	}
	dm, ds := Cusum(zm, DriftK), Cusum(zs, DriftK)
	for i := range fused {
		zdm, zds := f.DriftMHM.Z(-dm[i]), f.DriftSyscall.Z(-ds[i])
		drift := FuseMax(zdm, zds)
		if comb == WeightedSum {
			drift = FuseWeighted(f.Weights[0], zdm, f.Weights[1], zds)
		}
		fused[i] = FuseMax(fused[i], drift)
	}
	return fused, nil
}

// quantileTol matches threshold quantile labels: p values arrive
// through flag parsing and JSON round-trips, so exact float equality
// would miss a calibrated 0.995.
const quantileTol = 1e-9

// Threshold returns the combiner's θ_p. Quantile labels are matched
// within quantileTol.
func (f *Fuser) Threshold(comb Combiner, p float64) (float64, error) {
	for _, th := range f.Thresholds[comb] {
		if mat.EqTol(th.P, p, quantileTol) {
			return th.Theta, nil
		}
	}
	return 0, fmt.Errorf("ensemble: %s p=%g not calibrated: %w", comb, p, ErrConfig)
}
