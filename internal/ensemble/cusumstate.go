// The incremental form of the CUSUM drift statistic: the refresh loop
// feeds one standardized density per observed interval and reads the
// accumulator between refreshes, instead of re-folding a whole window
// through Cusum. Step reproduces Cusum's per-element arithmetic exactly
// — the streaming and batch forms are bit-identical on the same z
// sequence — so drift thresholds calibrated against Cusum transfer.
package ensemble

import "math"

// CusumState is a one-sided CUSUM accumulator over standardized scores.
// The zero value is ready to use. Not safe for concurrent use.
type CusumState struct {
	// S is the current accumulator value (≥ 0, clamped at zClamp).
	S float64
}

// Step folds one z-score with allowance k (NaN/Inf k falls back to
// DriftK, as in Cusum) and returns the updated accumulator.
//
//mhm:deterministic
func (c *CusumState) Step(z, k float64) float64 {
	if math.IsNaN(k) || math.IsInf(k, 0) {
		k = DriftK
	}
	z = sanitizeZ(z)
	if z > DriftCap {
		z = DriftCap
	}
	s := c.S + (z - k) // same association as Cusum's s += z - k
	if s < 0 {
		s = 0
	} else if s > zClamp {
		s = zClamp
	}
	c.S = s
	return s
}

// Reset clears the accumulator (after a model refresh re-baselines the
// density channel).
func (c *CusumState) Reset() { c.S = 0 }
