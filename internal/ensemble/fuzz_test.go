package ensemble

import (
	"math"
	"testing"
)

// FuzzFuse feeds random score pairs — including ±Inf and NaN
// log-densities — through a calibrated fuser and the raw combiner
// rules. The combiner must never panic, always return a finite value,
// and the max rule must be monotone in each input.
func FuzzFuse(f *testing.F) {
	f.Add(-30.0, -1.0, -29.0, -1.2, 0.5)
	f.Add(math.Inf(-1), math.NaN(), 0.0, math.Inf(1), 2.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-1e308, 1e308, 5.0, -5.0, -3.0)

	clean1 := []float64{-30, -31, -29, -32, -28, -30.5}
	clean2 := []float64{-1, -1.2, -0.8, -1.1, -0.9, -1.05}
	fuser, err := Calibrate(clean1, clean2, []float64{0.01})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, a, b, a2, b2, w float64) {
		for _, comb := range []Combiner{Max, WeightedSum} {
			got := fuser.Fuse(comb, a, b)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("%s(%g, %g) = %g, want finite", comb, a, b, got)
			}
			// The drift-augmented series stays finite for any score pair
			// and any (possibly non-finite) allowance.
			series, err := fuser.FuseSeriesDrift(comb, []float64{a, a2}, []float64{b, b2})
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range series {
				if math.IsNaN(s) || math.IsInf(s, 0) {
					t.Fatalf("%s drift series[%d] = %g, want finite", comb, i, s)
				}
			}
		}
		for i, c := range Cusum([]float64{a, b, a2, b2}, w) {
			if math.IsNaN(c) || c < 0 || c > 1e6 {
				t.Fatalf("Cusum[%d] = %g out of [0, 1e6]", i, c)
			}
		}
		if got := FuseWeighted(w, fuser.MHM.Z(a), 1-w, fuser.Syscall.Z(b)); math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("FuseWeighted(%g, ...) = %g, want finite", w, got)
		}

		// Monotonicity of the max rule: on the z scale the fused output
		// never decreases when either input increases; on the raw score
		// scale it never decreases when either score decreases (scores
		// are log-densities — lower means more anomalous). NaN inputs are
		// excluded: NaN means "no evidence", not an ordered value.
		z1, z2 := fuser.MHM.Z(a), fuser.Syscall.Z(b)
		y1, y2 := fuser.MHM.Z(a2), fuser.Syscall.Z(b2)
		base := FuseMax(z1, z2)
		if y1 >= z1 {
			if up := FuseMax(y1, z2); up < base {
				t.Fatalf("FuseMax not monotone in z1: (%g,%g)=%g > (%g,%g)=%g", z1, z2, base, y1, z2, up)
			}
		}
		if y2 >= z2 {
			if up := FuseMax(z1, y2); up < base {
				t.Fatalf("FuseMax not monotone in z2: (%g,%g)=%g > (%g,%g)=%g", z1, z2, base, z1, y2, up)
			}
		}
		if !math.IsNaN(a) && !math.IsNaN(a2) && a2 <= a && !math.IsNaN(b) {
			if fuser.Fuse(Max, a2, b) < fuser.Fuse(Max, a, b) {
				t.Fatalf("Fuse(Max) not antitone in MHM score: score %g scored lower than %g", a2, a)
			}
		}
		if !math.IsNaN(b) && !math.IsNaN(b2) && b2 <= b && !math.IsNaN(a) {
			if fuser.Fuse(Max, a, b2) < fuser.Fuse(Max, a, b) {
				t.Fatalf("Fuse(Max) not antitone in syscall score: score %g scored lower than %g", b2, b)
			}
		}
	})
}
