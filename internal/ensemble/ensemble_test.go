package ensemble

import (
	"errors"
	"math"
	"testing"
)

func TestFitChannelAndZ(t *testing.T) {
	clean := []float64{-10, -12, -11, -9, -8, -10}
	ch, err := FitChannel(clean)
	if err != nil {
		t.Fatal(err)
	}
	if z := ch.Z(ch.Mean); math.Abs(z) > 1e-12 {
		t.Errorf("Z(mean) = %g, want 0", z)
	}
	// A much lower (more anomalous) score yields a large positive z.
	if z := ch.Z(-100); z < 10 {
		t.Errorf("Z(-100) = %g, want strongly positive", z)
	}
	// Orientation: lower score => higher z.
	if ch.Z(-20) <= ch.Z(-5) {
		t.Errorf("Z not monotone decreasing in score: Z(-20)=%g Z(-5)=%g", ch.Z(-20), ch.Z(-5))
	}
	// NaN carries no evidence; infinities clamp.
	if z := ch.Z(math.NaN()); z != 0 {
		t.Errorf("Z(NaN) = %g, want 0", z)
	}
	if z := ch.Z(math.Inf(-1)); z != zClamp {
		t.Errorf("Z(-Inf) = %g, want %g", z, zClamp)
	}
	if z := ch.Z(math.Inf(1)); z != -zClamp {
		t.Errorf("Z(+Inf) = %g, want %g", z, -zClamp)
	}
}

func TestFitChannelValidation(t *testing.T) {
	if _, err := FitChannel([]float64{1}); !errors.Is(err, ErrConfig) {
		t.Errorf("single score: got %v, want ErrConfig", err)
	}
	if _, err := FitChannel([]float64{math.NaN(), math.Inf(1), 3}); !errors.Is(err, ErrConfig) {
		t.Errorf("non-finite scores: got %v, want ErrConfig", err)
	}
	// Degenerate (constant) clean scores still calibrate via the std floor.
	ch, err := FitChannel([]float64{-5, -5, -5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ch.Z(-6)) || math.IsInf(ch.Z(-6), 0) {
		t.Errorf("degenerate channel produced non-finite z: %g", ch.Z(-6))
	}
}

func TestFuseRules(t *testing.T) {
	if got := FuseMax(1, 3); got != 3 {
		t.Errorf("FuseMax(1,3) = %g", got)
	}
	if got := FuseMax(-2, -5); got != -2 {
		t.Errorf("FuseMax(-2,-5) = %g", got)
	}
	if got := FuseWeighted(0.5, 2, 0.5, 4); math.Abs(got-3) > 1e-12 {
		t.Errorf("FuseWeighted equal = %g, want 3", got)
	}
	if got := FuseWeighted(3, 2, 1, 4); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("FuseWeighted 3:1 = %g, want 2.5", got)
	}
	// Bad weights fall back to equal.
	if got := FuseWeighted(-1, 2, 0, 4); math.Abs(got-3) > 1e-12 {
		t.Errorf("FuseWeighted bad weights = %g, want 3", got)
	}
}

func TestCalibrateAndThresholds(t *testing.T) {
	n := 400
	mhm := make([]float64, n)
	sys := make([]float64, n)
	for i := range mhm {
		mhm[i] = -30 + 3*math.Sin(float64(i))
		sys[i] = -1 + 0.2*math.Cos(float64(i)*1.7)
	}
	f, err := Calibrate(mhm, sys, []float64{0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, comb := range []Combiner{Max, WeightedSum} {
		theta, err := f.Threshold(comb, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := f.FuseSeries(comb, mhm, sys)
		if err != nil {
			t.Fatal(err)
		}
		over := 0
		for _, s := range fused {
			if s > theta {
				over++
			}
		}
		frac := float64(over) / float64(n)
		if frac > 0.03 {
			t.Errorf("%s: clean exceedance %.3f at p=0.01, want ≈0.01", comb, frac)
		}
		// A strongly anomalous pair must exceed θ.
		if got := f.Fuse(comb, -300, -50); got <= theta {
			t.Errorf("%s: anomalous fuse %.2f not above θ=%.2f", comb, got, theta)
		}
	}
	if _, err := f.Threshold(Max, 0.5); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown quantile: got %v, want ErrConfig", err)
	}
	if _, err := Calibrate(mhm[:3], sys, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("length mismatch: got %v, want ErrConfig", err)
	}
	if _, err := Calibrate(mhm, sys, []float64{1.5}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad quantile: got %v, want ErrConfig", err)
	}
	if _, err := f.FuseSeries(Max, mhm[:2], sys); !errors.Is(err, ErrConfig) {
		t.Errorf("series mismatch: got %v, want ErrConfig", err)
	}
}

func TestCusum(t *testing.T) {
	// Hand-computed: k=1, z = {2, 0, 0.5, 3, -10, 2}.
	got := Cusum([]float64{2, 0, 0.5, 3, -10, 2}, 1)
	want := []float64{1, 0, 0, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cusum[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// NaN carries no evidence; ±Inf clamp; the accumulator stays in
	// [0, zClamp].
	vals := Cusum([]float64{math.NaN(), math.Inf(1), math.Inf(1), math.Inf(-1), math.NaN()}, 0.5)
	for i, v := range vals {
		if math.IsNaN(v) || v < 0 || v > zClamp {
			t.Fatalf("Cusum[%d] = %g out of [0, zClamp]", i, v)
		}
	}
	// A persistent shift just below a per-interval threshold integrates
	// into an unbounded ramp.
	sub := make([]float64, 50)
	for i := range sub {
		sub[i] = 1.5 // below a θ_0.01 z of ≈2.33, above DriftK
	}
	ramp := Cusum(sub, DriftK)
	if ramp[len(ramp)-1] < 20 {
		t.Errorf("sub-threshold shift accumulated only to %g", ramp[len(ramp)-1])
	}
	if bad := Cusum([]float64{5, 5}, math.NaN()); bad[1] <= bad[0] || math.IsNaN(bad[1]) {
		t.Errorf("NaN allowance fallback: %v", bad)
	}
}

func TestFuseSeriesDrift(t *testing.T) {
	n := 400
	mhm := make([]float64, n)
	sys := make([]float64, n)
	for i := range mhm {
		mhm[i] = -30 + 3*math.Sin(float64(i))
		sys[i] = -1 + 0.2*math.Cos(float64(i)*1.7)
	}
	f, err := Calibrate(mhm, sys, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !(f.DriftMHM.Std > 0) || !(f.DriftSyscall.Std > 0) {
		t.Fatalf("drift channels not calibrated: %+v / %+v", f.DriftMHM, f.DriftSyscall)
	}
	for _, comb := range []Combiner{Max, WeightedSum} {
		theta, err := f.Threshold(comb, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		// Clean exceedance of the drift-augmented statistic ≈ p.
		clean, err := f.FuseSeriesDrift(comb, mhm, sys)
		if err != nil {
			t.Fatal(err)
		}
		over := 0
		for _, s := range clean {
			if s > theta {
				over++
			}
		}
		if frac := float64(over) / float64(n); frac > 0.03 {
			t.Errorf("%s: clean drift exceedance %.3f at p=0.01", comb, frac)
		}
		// A sustained sub-threshold displacement on the syscall channel
		// (too small for any single interval to flag) must eventually
		// cross θ through the drift statistic.
		drifted := append([]float64(nil), sys...)
		for i := n / 2; i < n; i++ {
			drifted[i] -= 0.25 // ≈1.8 clean σ: persistent but individually quiet
		}
		shifted, err := f.FuseSeriesDrift(comb, mhm, drifted)
		if err != nil {
			t.Fatal(err)
		}
		crossed := false
		for i := n / 2; i < n; i++ {
			if shifted[i] > theta {
				crossed = true
				break
			}
		}
		if !crossed {
			t.Errorf("%s: persistent sub-threshold shift never crossed θ=%.2f", comb, theta)
		}
		if _, err := f.FuseSeriesDrift(comb, mhm[:2], sys); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: length mismatch: %v", comb, err)
		}
	}
	// A fuser without drift calibration degrades to the plain series.
	bare := &Fuser{MHM: f.MHM, Syscall: f.Syscall, Weights: [2]float64{0.5, 0.5}}
	plain, err := bare.FuseSeriesDrift(Max, mhm, sys)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.FuseSeries(Max, mhm, sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if plain[i] != want[i] {
			t.Fatalf("bare fuser drifted at %d: %g vs %g", i, plain[i], want[i])
		}
	}
}

func TestCombinerString(t *testing.T) {
	if Max.String() != "ensemble-max" || WeightedSum.String() != "ensemble-wsum" {
		t.Errorf("combiner names: %q %q", Max.String(), WeightedSum.String())
	}
	if Combiner(9).String() != "Combiner(9)" {
		t.Errorf("unknown combiner: %q", Combiner(9).String())
	}
}
