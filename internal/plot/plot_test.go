package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	ys := make([]float64, 200)
	for i := range ys {
		ys[i] = math.Sin(float64(i) / 10)
	}
	out, err := Line(ys, Options{Width: 60, Height: 10, Title: "sine"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 10 rows.
	if len(lines) != 11 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "sine" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.Contains(out, "*") {
		t.Error("no data points drawn")
	}
	// Y labels on the first and last rows.
	if !strings.Contains(lines[1], "1.0") {
		t.Errorf("max label missing: %q", lines[1])
	}
	if !strings.Contains(lines[10], "-1.0") {
		t.Errorf("min label missing: %q", lines[10])
	}
}

func TestLineThresholdsAndMarks(t *testing.T) {
	ys := make([]float64, 100)
	for i := range ys {
		ys[i] = -30
		if i >= 50 {
			ys[i] = -60
		}
	}
	out, err := Line(ys, Options{
		Width:  50,
		Height: 8,
		HLines: map[string]float64{"θ1": -40},
		Marks:  map[string]int{"launch": 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-- θ1 = -40.00") {
		t.Errorf("threshold legend missing:\n%s", out)
	}
	if !strings.Contains(out, "^ launch at x=50") {
		t.Errorf("mark legend missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("threshold line not drawn")
	}
}

func TestLineDownsamplesKeepingMinima(t *testing.T) {
	// A single deep dip in a long flat series must survive downsampling
	// (dips are the detection signal).
	ys := make([]float64, 1000)
	for i := range ys {
		ys[i] = 0
	}
	ys[500] = -100
	out, err := Line(ys, Options{Width: 40, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	// The dip defines the bottom of the scale.
	if !strings.Contains(out, "-100.0") {
		t.Errorf("dip lost in downsampling:\n%s", out)
	}
}

func TestLineErrors(t *testing.T) {
	if _, err := Line(nil, Options{}); !errors.Is(err, ErrInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Line([]float64{math.NaN()}, Options{}); !errors.Is(err, ErrInput) {
		t.Errorf("NaN: %v", err)
	}
	if _, err := Line([]float64{math.Inf(-1)}, Options{}); !errors.Is(err, ErrInput) {
		t.Errorf("Inf: %v", err)
	}
}

func TestLineConstantSeries(t *testing.T) {
	out, err := Line([]float64{5, 5, 5, 5}, Options{Width: 10, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("constant series not drawn")
	}
}

func TestLineDefaults(t *testing.T) {
	out, err := Line([]float64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 16 {
		t.Errorf("default height rows = %d, want 16", len(lines))
	}
}

func TestYLabel(t *testing.T) {
	out, err := Line([]float64{1, 2, 3}, Options{YLabel: "logdensity", Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "logdensity") {
		t.Errorf("y label missing:\n%s", out)
	}
}

func TestKeepMaxPreservesSpikes(t *testing.T) {
	ys := make([]float64, 1000)
	ys[500] = 100
	out, err := Line(ys, Options{Width: 40, Height: 6, KeepMax: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100.0") {
		t.Errorf("spike lost with KeepMax:\n%s", out)
	}
}
