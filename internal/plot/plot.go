// Package plot renders time series as ASCII line charts so the
// experiment drivers can show the paper's figures (log-density and
// traffic-volume series) directly in a terminal.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrInput wraps invalid plot inputs.
var ErrInput = errors.New("plot: invalid input")

// Options tunes a chart.
type Options struct {
	// Width and Height are the plot area size in characters (defaults
	// 80x16).
	Width, Height int
	// Title is printed above the chart.
	Title string
	// HLines draws labeled horizontal threshold lines at these y values
	// (e.g. θ0.5 and θ1).
	HLines map[string]float64
	// Marks labels x positions (e.g. "launch" at interval 250).
	Marks map[string]int
	// YLabel annotates the vertical axis.
	YLabel string
	// KeepMax downsamples by bucket-maximum instead of the default
	// bucket-minimum: use it when spikes are the signal (traffic volume)
	// rather than dips (log density).
	KeepMax bool
}

func (o *Options) fill() {
	if o.Width <= 0 {
		o.Width = 80
	}
	if o.Height <= 0 {
		o.Height = 16
	}
}

// Line renders ys (one value per x step) as an ASCII chart. Values are
// downsampled by bucket-minimum when the series is wider than the plot
// (minimum, because for density plots the dips are the signal).
func Line(ys []float64, opts Options) (string, error) {
	if len(ys) == 0 {
		return "", fmt.Errorf("plot: empty series: %w", ErrInput)
	}
	opts.fill()
	w, h := opts.Width, opts.Height

	// Downsample to w columns, keeping each bucket's minimum.
	cols := make([]float64, w)
	for c := 0; c < w; c++ {
		lo := c * len(ys) / w
		hi := (c + 1) * len(ys) / w
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(ys) {
			hi = len(ys)
		}
		keep := ys[lo]
		for _, v := range ys[lo:hi] {
			if (opts.KeepMax && v > keep) || (!opts.KeepMax && v < keep) {
				keep = v
			}
		}
		cols[c] = keep
	}

	// Y range across data and threshold lines.
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, v := range cols {
		yMin = math.Min(yMin, v)
		yMax = math.Max(yMax, v)
	}
	for _, v := range opts.HLines {
		yMin = math.Min(yMin, v)
		yMax = math.Max(yMax, v)
	}
	if math.IsInf(yMin, 0) || math.IsInf(yMax, 0) || math.IsNaN(yMin) || math.IsNaN(yMax) {
		return "", fmt.Errorf("plot: non-finite series: %w", ErrInput)
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	row := func(v float64) int {
		r := int(float64(h-1) * (yMax - v) / (yMax - yMin))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	// Threshold lines first so data overdraws them.
	for _, v := range opts.HLines {
		r := row(v)
		for c := 0; c < w; c++ {
			grid[r][c] = '-'
		}
	}
	for c, v := range cols {
		grid[row(v)][c] = '*'
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	for i, line := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%10.1f", yMax)
		case h - 1:
			label = fmt.Sprintf("%10.1f", yMin)
		case h / 2:
			if opts.YLabel != "" {
				l := opts.YLabel
				if len(l) > 10 {
					l = l[:10]
				}
				label = fmt.Sprintf("%10s", l)
			}
		}
		fmt.Fprintf(&b, "%s |%s\n", label, line)
	}
	// X marks row.
	if len(opts.Marks) > 0 {
		marks := []byte(strings.Repeat(" ", w))
		for _, x := range opts.Marks {
			c := x * w / len(ys)
			if c >= 0 && c < w {
				marks[c] = '^'
			}
		}
		fmt.Fprintf(&b, "%10s  %s\n", "", marks)
		for name, x := range opts.Marks {
			fmt.Fprintf(&b, "%10s  ^ %s at x=%d\n", "", name, x)
		}
	}
	// Threshold legend.
	for name, v := range opts.HLines {
		fmt.Fprintf(&b, "%10s  -- %s = %.2f\n", "", name, v)
	}
	return b.String(), nil
}
