package main

import "testing"

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"paper", "medium", "quick"} {
		s, err := scaleByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s.TrainRuns == 0 || s.IntervalMicros == 0 {
			t.Errorf("%s: incomplete scale %+v", name, s)
		}
	}
	if _, err := scaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("not-an-experiment", "quick", 1, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("taskset", "bogus-scale", 1, ""); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunSingleExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run("taskset", "quick", 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("fig1", "quick", 1, ""); err != nil {
		t.Fatal(err)
	}
}
