// Command mhmreport regenerates every table and figure of the paper's
// evaluation (§5) plus the ablation studies listed in DESIGN.md, printing
// the same rows/series the paper reports.
//
// Usage:
//
//	mhmreport [-exp all|fig1|training|fig6|fig7|fig8|fig9|fig10|analysis|taskset|
//	           ablation-lprime|ablation-j|ablation-gran|ablation-baseline|
//	           ablation-cache|smp|alarms|extended|roc|auto-j|generalize|multiregion|
//	           metrics|scoring|scenarios|refresh]
//	          [-scale paper|medium|quick] [-seed N] [-json FILE]
//
// The scenarios experiment runs the full scenario × detector matrix
// (catalogued attacks and workload changes against the MHM, syscall-
// frequency and ensemble detectors); -json additionally writes it in
// the BENCH_scenarios.json schema. The refresh experiment compares one
// incremental model refresh against the full retrain it replaces
// (latency and detection AUC) and checks the fleet loop's zero-drop
// swap contract; -json writes the BENCH_refresh.json schema.
//
// The paper scale (10 runs x 3 s of training data) takes tens of seconds;
// medium and quick scales run the identical pipeline on less data. The
// metrics experiment runs a fully instrumented online detection loop and
// prints a summary parsed from the internal/obs JSON snapshot.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/experiments"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/pipeline"
	"github.com/memheatmap/mhm/internal/securecore"
)

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "paper":
		return experiments.PaperScale(), nil
	case "quick":
		return experiments.QuickScale(), nil
	case "medium":
		s := experiments.PaperScale()
		s.TrainRuns = 5
		s.TrainRunMicros = 2_000_000
		s.CalibRunMicros = 2_000_000
		s.PCAOptions = pca.Options{VarianceFraction: 0.9999, MaxComponents: 24, Parallel: true}
		s.GMMOptions = gmm.Options{Components: 5, Restarts: 5, Parallel: true}
		return s, nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	scaleName := flag.String("scale", "medium", "paper, medium or quick")
	seed := flag.Int64("seed", 1, "platform seed")
	jsonPath := flag.String("json", "", "write machine-readable results here (scenarios experiment)")
	flag.Parse()

	if err := run(*exp, *scaleName, *seed, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "mhmreport:", err)
		os.Exit(1)
	}
}

func run(exp, scaleName string, seed int64, jsonPath string) error {
	scale, err := scaleByName(scaleName)
	if err != nil {
		return err
	}
	lab, err := experiments.NewLab(seed, scale)
	if err != nil {
		return err
	}

	// Several experiments share the trained detector; train lazily.
	var det *core.Detector
	detector := func() (*core.Detector, error) {
		if det != nil {
			return det, nil
		}
		fmt.Printf("== training detector (%s scale) ==\n", scaleName)
		d, rep, err := lab.TrainDetector(100)
		if err != nil {
			return nil, err
		}
		fmt.Print(rep.String())
		det = d
		return det, nil
	}

	type runner struct {
		name string
		fn   func() error
	}
	runners := []runner{
		{"taskset", func() error {
			r, err := lab.Taskset(2_000_000, 7)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"fig1", func() error {
			r, err := lab.Fig1(42)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"training", func() error {
			if _, err := detector(); err != nil {
				return err
			}
			r, err := lab.TrainingThroughput(9300, 1)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"fig6", func() error {
			r, err := lab.Fig6(300)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"fig7", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.Fig7(d, 777)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return printDetectionPlot(r)
		}},
		{"fig8", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.Fig8(d, 888)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return printDetectionPlot(r)
		}},
		{"fig9", func() error {
			r, err := lab.Fig9(999)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			chart, err := r.Plot(100, 16)
			if err != nil {
				return err
			}
			fmt.Print(chart)
			return nil
		}},
		{"fig10", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.Fig10(d, 999)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			hist := experiments.ShaPhaseHistogram(r, 0.01, 10)
			fmt.Printf("  flagged-by-phase histogram (mod 10 intervals; sha period = 10 intervals): %v\n", hist)
			return printDetectionPlot(r)
		}},
		{"analysis", func() error {
			r, err := lab.AnalysisTime(9000, 1000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"ablation-lprime", func() error {
			r, err := lab.LPrimeSweep([]int{1, 2, 4, 9, 16}, 2000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"ablation-j", func() error {
			r, err := lab.JSweep([]int{1, 2, 5, 8}, 2000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"ablation-gran", func() error {
			// δ = 1 KB would need 2,943 cells — more than the 8 KB
			// on-chip MHM memory holds, so the sweep starts at the
			// paper's 2 KB.
			r, err := lab.GranSweep([]uint64{2048, 4096, 8192, 16384}, 2000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"ablation-baseline", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.BaselineCompare(d, 3000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"ablation-cache", func() error {
			r, err := lab.CachePlacement(4000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"smp", func() error {
			r, err := lab.SMPDetection(5000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"alarms", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.AlarmLatency(d, 6000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"extended", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.ExtendedScenarios(d, 7000)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"roc", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.ROC(d, 8000, nil)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"auto-j", func() error {
			r, err := lab.AutoJ(9100, 1, 8)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"generalize", func() error {
			r, err := lab.Generalize(9500)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"multiregion", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.MultiRegion(d, 999)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
		{"metrics", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			return metricsSummary(lab, d, seed)
		}},
		{"scenarios", func() error {
			cfg := experiments.DefaultMatrixConfig()
			if scaleName == "quick" {
				cfg = experiments.QuickMatrixConfig()
			}
			m, err := lab.Scenarios(9400, cfg)
			if err != nil {
				return err
			}
			fmt.Print(m.String())
			if jsonPath == "" {
				return nil
			}
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			if err := m.WriteJSON(f); err != nil {
				_ = f.Close()
				return err
			}
			fmt.Printf("  wrote %s\n", jsonPath)
			return f.Close()
		}},
		{"refresh", func() error {
			r, err := experiments.RefreshUpkeep(seed, 20)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			if jsonPath == "" {
				return nil
			}
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			if err := r.WriteJSON(f); err != nil {
				_ = f.Close()
				return err
			}
			fmt.Printf("  wrote %s\n", jsonPath)
			return f.Close()
		}},
		{"scoring", func() error {
			d, err := detector()
			if err != nil {
				return err
			}
			r, err := lab.ScoringThroughput(d, 9200, 3)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			return nil
		}},
	}

	ran := false
	for _, r := range runners {
		if exp != "all" && exp != r.name {
			continue
		}
		ran = true
		fmt.Printf("\n==== %s ====\n", r.name)
		if err := r.fn(); err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// printDetectionPlot renders a detection result's density chart.
func printDetectionPlot(r *experiments.DetectionResult) error {
	chart, err := r.Plot(100, 16)
	if err != nil {
		return err
	}
	fmt.Print(chart)
	return nil
}

// metricsSummary runs a fully instrumented online detection loop
// (rootkit scenario) and prints the observability snapshot two ways:
// a stage-by-stage summary table parsed from the frozen JSON schema —
// proving the export is machine-readable — and the raw text form.
func metricsSummary(lab *experiments.Lab, d *core.Detector, seed int64) error {
	reg := obs.NewRegistry()
	// Instrument a shallow copy so the shared detector used by the
	// other experiments stays untouched.
	det := *d
	det.Instrument(reg)
	pl, err := pipeline.New(&det, pipeline.Config{Quantile: 0.01, Metrics: reg})
	if err != nil {
		return err
	}
	session, err := attack.BuildScenarioSession(lab.Img, &attack.RootkitLKM{LoadAt: 1_500_000},
		securecore.SessionConfig{
			Region:         d.Region,
			IntervalMicros: 10_000,
			NoiseSeed:      seed + 31000,
			OnMHM:          pl.Process,
		})
	if err != nil {
		return err
	}
	session.Monitor.SetMetrics(reg)
	if _, err := session.Run(3_000_000); err != nil {
		return err
	}

	// Round-trip through the frozen JSON schema.
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		return err
	}
	snap, err := obs.ParseSnapshot(buf.Bytes())
	if err != nil {
		return err
	}

	fmt.Println("metrics summary (3 s rootkit run, 10 ms intervals):")
	fmt.Printf("  %-28s %d\n", "bursts delivered", snap.Counters["securecore.bursts_delivered"])
	fmt.Printf("  %-28s %d snooped, %d accepted\n", "memometer filter",
		snap.Counters["memometer.snooped"], snap.Counters["memometer.accepted"])
	fmt.Printf("  %-28s %d swaps, %d dropped\n", "double buffer",
		snap.Counters["memometer.swaps"], snap.Counters["memometer.overruns"])
	fmt.Printf("  %-28s %d analyzed, %d anomalous, %d deadline overruns\n", "pipeline intervals",
		snap.Counters["pipeline.intervals"], snap.Counters["pipeline.anomalous"],
		snap.Counters["pipeline.overruns"])
	fmt.Printf("  %-28s %d raised, %d cleared, %d suppressed\n", "alarms",
		snap.Counters["alarm.raised"], snap.Counters["alarm.cleared"],
		snap.Counters["alarm.suppressed"])
	for _, row := range []struct{ label, name string }{
		{"PCA projection", "core.project_micros"},
		{"GMM scoring", "core.score_micros"},
		{"interval analysis", "pipeline.analysis_micros"},
	} {
		h, ok := snap.Histograms[row.name]
		if !ok {
			return fmt.Errorf("metrics: histogram %q missing from snapshot", row.name)
		}
		fmt.Printf("  %-28s p50=%.1fµs p99=%.1fµs max=%.1fµs (n=%d)\n",
			row.label+" latency", h.Quantile(0.5), h.Quantile(0.99), h.Max, h.Count)
	}
	fmt.Println("raw snapshot (expvar-style):")
	return reg.WriteText(os.Stdout)
}
