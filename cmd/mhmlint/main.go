// Command mhmlint runs the repository's static-analysis suite
// (internal/lint) over package patterns, go-vet style:
//
//	mhmlint [-json] [-sarif] [-only a,b] [-disable a,b] [-list] ./...
//
// Analyzers: atomicfield, nilreceiver, hotpath, floateq, errdrop,
// detorder, lockorder, goleak — each enforcing one of the invariants in
// DESIGN.md "Enforced invariants". Findings are suppressed with
// `//mhmlint:ignore <analyzer> <reason>` on the offending line or the
// line above. -sarif emits SARIF 2.1.0 for CI annotation uploads.
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/memheatmap/mhm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mhmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fprintf(stderr, "usage: mhmlint [-json] [-sarif] [-only a,b] [-disable a,b] [-list] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(analyzers, *only, *disable)
	if err != nil {
		fprintf(stderr, "mhmlint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fprintf(stderr, "mhmlint: %v\n", err)
		return 2
	}
	prog, err := lint.Load(cwd, patterns)
	if err != nil {
		fprintf(stderr, "mhmlint: %v\n", err)
		return 2
	}
	diags := lint.RunAnalyzers(prog, selected)

	switch {
	case *sarifOut && *jsonOut:
		fprintf(stderr, "mhmlint: -json and -sarif are mutually exclusive\n")
		return 2
	case *sarifOut:
		if err := lint.WriteSARIF(stdout, prog.Root, selected, diags); err != nil {
			fprintf(stderr, "mhmlint: %v\n", err)
			return 2
		}
	case *jsonOut:
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     relTo(prog.Root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []jsonFinding `json:"findings"`
		}{findings}); err != nil {
			fprintf(stderr, "mhmlint: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relTo(prog.Root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fprintf(stderr, "mhmlint: %d finding(s) in %d package(s)\n", len(diags), len(prog.Pkgs))
		return 1
	}
	return 0
}

// selectAnalyzers applies -only and -disable.
func selectAnalyzers(all []*lint.Analyzer, only, disable string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	validate := func(csv string) ([]string, error) {
		if csv == "" {
			return nil, nil
		}
		names := strings.Split(csv, ",")
		for _, n := range names {
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", n)
			}
		}
		return names, nil
	}
	onlyNames, err := validate(only)
	if err != nil {
		return nil, err
	}
	disabledNames, err := validate(disable)
	if err != nil {
		return nil, err
	}
	disabled := map[string]bool{}
	for _, n := range disabledNames {
		disabled[n] = true
	}
	var out []*lint.Analyzer
	if onlyNames != nil {
		for _, n := range onlyNames {
			if !disabled[n] {
				out = append(out, byName[n])
			}
		}
	} else {
		for _, a := range all {
			if !disabled[a.Name] {
				out = append(out, a)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// fprintf is best-effort console output: a diagnostic about failing to
// print diagnostics would have nowhere to go.
func fprintf(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

// relTo renders path relative to root when possible, for stable output.
func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}
