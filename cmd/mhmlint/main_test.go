package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/memheatmap/mhm/internal/lint"
)

// fixture returns the path of a lint fixture package relative to this
// package directory (tests run with cwd = cmd/mhmlint).
func fixture(name string) string {
	return "../../internal/lint/testdata/src/" + name
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFixturesFail verifies that each violation fixture drives the exit
// status to 1 and that the findings carry the right analyzer label.
func TestFixturesFail(t *testing.T) {
	cases := []struct {
		analyzer string
		dir      string
	}{
		{"atomicfield", fixture("atomicfield/af")},
		{"nilreceiver", fixture("nilreceiver/obs")},
		{"hotpath", fixture("hotpath/hp")},
		{"floateq", fixture("floateq/gmm")},
		{"errdrop", fixture("errdrop/ed")},
		{"detorder", fixture("detorder/det")},
		{"lockorder", fixture("lockorder/lo")},
		{"goleak", fixture("goleak/gl")},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.dir)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
			}
			if !strings.Contains(stdout, ": "+tc.analyzer+": ") {
				t.Errorf("stdout has no %s finding:\n%s", tc.analyzer, stdout)
			}
			if !strings.Contains(stderr, "finding(s)") {
				t.Errorf("stderr summary missing:\n%s", stderr)
			}
		})
	}
}

// TestCleanFixturePasses is the negative case, including the suppressed
// violation inside it.
func TestCleanFixturePasses(t *testing.T) {
	code, stdout, stderr := runCLI(t, fixture("clean/clean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no output, got:\n%s", stdout)
	}
}

// TestWholeTreeClean asserts the repo itself satisfies its own suite —
// the same invariant CI enforces with `go run ./cmd/mhmlint ./...`.
func TestWholeTreeClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, "github.com/memheatmap/mhm/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", fixture("errdrop/ed"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if len(doc.Findings) != 4 {
		t.Fatalf("findings = %d, want 4:\n%s", len(doc.Findings), stdout)
	}
	for _, f := range doc.Findings {
		if f.Analyzer != "errdrop" || f.Line == 0 || f.Col == 0 ||
			!strings.HasSuffix(f.File, "ed.go") || f.Message == "" {
			t.Errorf("malformed finding: %+v", f)
		}
	}
}

func TestOnlySelectsAnalyzer(t *testing.T) {
	// The errdrop fixture is clean under every other analyzer.
	code, stdout, _ := runCLI(t, "-only", "floateq", fixture("errdrop/ed"))
	if code != 0 || stdout != "" {
		t.Errorf("exit = %d, stdout:\n%s", code, stdout)
	}
}

func TestDisableSkipsAnalyzer(t *testing.T) {
	code, stdout, _ := runCLI(t, "-disable", "errdrop", fixture("errdrop/ed"))
	if code != 0 || stdout != "" {
		t.Errorf("exit = %d, stdout:\n%s", code, stdout)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	names := []string{
		"atomicfield", "nilreceiver", "hotpath", "floateq", "errdrop",
		"detorder", "lockorder", "goleak",
	}
	for _, name := range names {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
	if got := len(strings.Fields(strings.ReplaceAll(stdout, "\n", " "))); got == 0 {
		t.Fatalf("empty -list output")
	}
	if lines := strings.Count(strings.TrimSpace(stdout), "\n") + 1; lines != len(names) {
		t.Errorf("-list shows %d analyzers, want %d:\n%s", lines, len(names), stdout)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, stderr := runCLI(t, "-only", "nosuch", fixture("clean/clean"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr:\n%s", stderr)
	}
}

func TestBadPattern(t *testing.T) {
	code, _, stderr := runCLI(t, "./no/such/dir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
}

// sarifDoc mirrors the required slice of the SARIF 2.1.0 schema; the
// validation below is structural (no external schema validator): every
// property the standard marks required for log, run, tool, rule, result
// and location objects must be present and well-formed.
type sarifDoc struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

// TestSARIFOutput validates -sarif output against the SARIF 2.1.0
// schema requirements.
func TestSARIFOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-sarif", fixture("errdrop/ed"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc sarifDoc
	dec := json.NewDecoder(strings.NewReader(stdout))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("output has fields outside the emitted schema slice: %v\n%s", err, stdout)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if doc.Schema != lint.SARIFSchemaURI {
		t.Errorf("$schema = %q, want %q", doc.Schema, lint.SARIFSchemaURI)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "mhmlint" {
		t.Errorf("tool.driver.name = %q", run.Tool.Driver.Name)
	}
	ruleIndex := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %d incomplete: %+v", i, r)
		}
		if _, dup := ruleIndex[r.ID]; dup {
			t.Errorf("duplicate rule id %q", r.ID)
		}
		ruleIndex[r.ID] = i
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a failing fixture")
	}
	for i, res := range run.Results {
		if res.Message.Text == "" {
			t.Errorf("result %d has empty message", i)
		}
		if res.Level != "error" {
			t.Errorf("result %d level = %q", i, res.Level)
		}
		if idx, ok := ruleIndex[res.RuleID]; !ok || idx != res.RuleIndex {
			t.Errorf("result %d ruleId %q / ruleIndex %d do not resolve in driver.rules", i, res.RuleID, res.RuleIndex)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("result %d artifact URI %q not slash-separated", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("result %d startLine = %d", i, loc.Region.StartLine)
		}
	}
}

// TestSARIFCleanTree emits SARIF for the clean fixture: still a valid
// log, with an empty (but present) results array.
func TestSARIFCleanTree(t *testing.T) {
	code, stdout, _ := runCLI(t, "-sarif", fixture("clean/clean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, stdout)
	}
	var doc sarifDoc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("bad SARIF: %v", err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Results == nil || len(doc.Runs[0].Results) != 0 {
		t.Errorf("clean run should carry an empty results array:\n%s", stdout)
	}
}

// TestSARIFExclusiveWithJSON pins the flag contract.
func TestSARIFExclusiveWithJSON(t *testing.T) {
	code, _, stderr := runCLI(t, "-sarif", "-json", fixture("clean/clean"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("stderr:\n%s", stderr)
	}
}

// TestSelfLint runs the driver over its own implementation package: the
// analyzers must hold on the code that implements them.
func TestSelfLint(t *testing.T) {
	code, stdout, stderr := runCLI(t, "../../internal/lint")
	if code != 0 {
		t.Fatalf("internal/lint fails its own suite (exit %d):\n%s\n%s", code, stdout, stderr)
	}
}

// TestFleetDecisionPathClean pins the fleet control plane specifically:
// its routing, admission, registry, autoscale and simulator decision
// functions are //mhm:deterministic-annotated, so detorder walks their
// transitive closure — a time.Now, global rand, or unordered map fold
// slipping into a decision path must fail this test, not just the
// whole-tree run.
func TestFleetDecisionPathClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, "../../internal/fleet")
	if code != 0 {
		t.Fatalf("internal/fleet fails the lint suite (exit %d):\n%s\n%s", code, stdout, stderr)
	}
	// The annotations must actually be present — a clean result because
	// someone deleted the markers is not a pass.
	data, err := os.ReadFile("../../internal/fleet/router.go")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "//mhm:deterministic") {
		t.Fatal("fleet routing lost its //mhm:deterministic annotations")
	}
}

// worstCase is a generated package violating every analyzer at once; the
// import path ends in "score" so the floateq scope applies.
const worstCase = `package score

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

var sink float64

type ctr struct{ n int64 }

func (c *ctr) Inc()       { atomic.AddInt64(&c.n, 1) }
func (c *ctr) Raw() int64 { return c.n }

//mhm:nilsafe
type Handle struct{ v float64 }

func (h *Handle) Value() float64 { return h.v }

//mhm:hotpath
func Hot(n int) []int { return make([]int, n) }

func Eq(a, b float64) bool { return a == b }

func Drop() { os.Remove("x") }

//mhm:deterministic
func Det() int64 { return time.Now().Unix() }

var (
	mu1 sync.Mutex
	mu2 sync.Mutex
)

func AB() {
	mu1.Lock()
	defer mu1.Unlock()
	mu2.Lock()
	defer mu2.Unlock()
	sink++
}

func BA() {
	mu2.Lock()
	defer mu2.Unlock()
	mu1.Lock()
	defer mu1.Unlock()
	sink++
}

func Leak() {
	go func() {
		sink++
	}()
}
`

// TestWorstCasePackage generates a package that trips all eight
// analyzers and checks each one fires.
func TestWorstCasePackage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/worst\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "score")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "worst.go"), []byte(worstCase), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := lint.Load(dir, []string{"./score"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	fired := map[string]bool{}
	for _, d := range lint.RunAnalyzers(prog, lint.Analyzers()) {
		fired[d.Analyzer] = true
	}
	for _, a := range lint.Analyzers() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s did not fire on the worst-case package", a.Name)
		}
	}
}
