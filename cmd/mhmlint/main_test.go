package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fixture returns the path of a lint fixture package relative to this
// package directory (tests run with cwd = cmd/mhmlint).
func fixture(name string) string {
	return "../../internal/lint/testdata/src/" + name
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFixturesFail verifies that each violation fixture drives the exit
// status to 1 and that the findings carry the right analyzer label.
func TestFixturesFail(t *testing.T) {
	cases := []struct {
		analyzer string
		dir      string
	}{
		{"atomicfield", fixture("atomicfield/af")},
		{"nilreceiver", fixture("nilreceiver/obs")},
		{"hotpath", fixture("hotpath/hp")},
		{"floateq", fixture("floateq/gmm")},
		{"errdrop", fixture("errdrop/ed")},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.dir)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
			}
			if !strings.Contains(stdout, ": "+tc.analyzer+": ") {
				t.Errorf("stdout has no %s finding:\n%s", tc.analyzer, stdout)
			}
			if !strings.Contains(stderr, "finding(s)") {
				t.Errorf("stderr summary missing:\n%s", stderr)
			}
		})
	}
}

// TestCleanFixturePasses is the negative case, including the suppressed
// violation inside it.
func TestCleanFixturePasses(t *testing.T) {
	code, stdout, stderr := runCLI(t, fixture("clean/clean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no output, got:\n%s", stdout)
	}
}

// TestWholeTreeClean asserts the repo itself satisfies its own suite —
// the same invariant CI enforces with `go run ./cmd/mhmlint ./...`.
func TestWholeTreeClean(t *testing.T) {
	code, stdout, stderr := runCLI(t, "github.com/memheatmap/mhm/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", fixture("errdrop/ed"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if len(doc.Findings) != 4 {
		t.Fatalf("findings = %d, want 4:\n%s", len(doc.Findings), stdout)
	}
	for _, f := range doc.Findings {
		if f.Analyzer != "errdrop" || f.Line == 0 || f.Col == 0 ||
			!strings.HasSuffix(f.File, "ed.go") || f.Message == "" {
			t.Errorf("malformed finding: %+v", f)
		}
	}
}

func TestOnlySelectsAnalyzer(t *testing.T) {
	// The errdrop fixture is clean under every other analyzer.
	code, stdout, _ := runCLI(t, "-only", "floateq", fixture("errdrop/ed"))
	if code != 0 || stdout != "" {
		t.Errorf("exit = %d, stdout:\n%s", code, stdout)
	}
}

func TestDisableSkipsAnalyzer(t *testing.T) {
	code, stdout, _ := runCLI(t, "-disable", "errdrop", fixture("errdrop/ed"))
	if code != 0 || stdout != "" {
		t.Errorf("exit = %d, stdout:\n%s", code, stdout)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"atomicfield", "nilreceiver", "hotpath", "floateq", "errdrop"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, stderr := runCLI(t, "-only", "nosuch", fixture("clean/clean"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr:\n%s", stderr)
	}
}

func TestBadPattern(t *testing.T) {
	code, _, stderr := runCLI(t, "./no/such/dir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
}
