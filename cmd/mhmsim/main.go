// Command mhmsim runs the simulated monitored core and dumps memory heat
// maps as CSV (one row per interval) — the raw data feeding training and
// detection. It can also render one interval as an ASCII heat map
// (Fig. 1 style).
//
// Usage:
//
//	mhmsim [-scenario clean|app-addition|shellcode|rootkit] [-duration ms]
//	       [-event ms] [-gran bytes] [-seed N] [-cells] [-render N] [-out file]
//	       [-metrics <path|->]
//
// With -metrics, the run dumps a JSON observability snapshot of the
// monitoring front end (addresses snooped/filtered, buffer swaps,
// dropped intervals) at exit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/trace"
	"github.com/memheatmap/mhm/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "clean", "clean, app-addition, shellcode or rootkit")
	durationMs := flag.Int64("duration", 3000, "simulated duration in ms")
	eventMs := flag.Int64("event", 1500, "scenario event time in ms")
	gran := flag.Uint64("gran", 2048, "heat map granularity in bytes (power of two)")
	seed := flag.Int64("seed", 1, "noise seed")
	withCells := flag.Bool("cells", false, "include per-cell counts in the CSV")
	render := flag.Int("render", -1, "render interval N as an ASCII heat map instead of CSV")
	out := flag.String("out", "-", "output file (- for stdout)")
	tracePath := flag.String("trace", "", "also capture the raw bus trace to this file (replayable)")
	metrics := flag.String("metrics", "", "dump a metrics snapshot to this path at exit (- for stdout)")
	flag.Parse()

	if err := run(*scenario, *durationMs, *eventMs, *gran, *seed, *withCells, *render, *out, *tracePath, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "mhmsim:", err)
		os.Exit(1)
	}
}

func buildScenario(name string, eventMicros int64) (attack.Scenario, error) {
	switch name {
	case "clean":
		return nil, nil
	case "app-addition":
		return &attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: eventMicros}, nil
	case "shellcode":
		return &attack.Shellcode{Host: "bitcount", InjectAt: eventMicros}, nil
	case "rootkit":
		return &attack.RootkitLKM{LoadAt: eventMicros}, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q", name)
	}
}

func run(scenario string, durationMs, eventMs int64, gran uint64, seed int64, withCells bool, render int, out, tracePath, metricsPath string) error {
	img, err := kernelmap.NewImage(1)
	if err != nil {
		return err
	}
	sc, err := buildScenario(scenario, eventMs*1000)
	if err != nil {
		return err
	}
	session, err := attack.BuildScenarioSession(img, sc, securecore.SessionConfig{
		Region:    heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: gran},
		NoiseSeed: seed,
	})
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if metricsPath != "" {
		reg = obs.NewRegistry()
		session.Monitor.SetMetrics(reg)
	}
	var traceWriter *trace.Writer
	if tracePath != "" {
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer tf.Close()
		traceWriter = trace.NewWriter(tf)
		session.Monitor.SetTraceWriter(traceWriter)
	}
	maps, err := session.Run(durationMs * 1000)
	if err != nil {
		return err
	}
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mhmsim: captured %d trace events to %s\n", traceWriter.Count(), tracePath)
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	dumpMetrics := func() error {
		// Flush before the snapshot so the metrics JSON lands after the map
		// output when both hit stdout — and so CSV write errors surface
		// here instead of dying in the deferred backstop flush.
		if err := bw.Flush(); err != nil {
			return err
		}
		if reg == nil {
			return nil
		}
		if err := reg.DumpFile(metricsPath); err != nil {
			return fmt.Errorf("dump metrics: %w", err)
		}
		return nil
	}

	if render >= 0 {
		if render >= len(maps) {
			return fmt.Errorf("interval %d out of range (%d intervals)", render, len(maps))
		}
		if _, err := fmt.Fprint(bw, maps[render].Render(92)); err != nil {
			return err
		}
		return dumpMetrics()
	}

	// CSV header.
	if _, err := fmt.Fprintf(bw, "interval,startMicros,endMicros,total"); err != nil {
		return err
	}
	if withCells {
		for c := 0; c < len(maps[0].Counts); c++ {
			fmt.Fprintf(bw, ",cell%d", c)
		}
	}
	fmt.Fprintln(bw)
	for i, m := range maps {
		fmt.Fprintf(bw, "%d,%d,%d,%d", i, m.Start, m.End, m.Total())
		if withCells {
			for _, c := range m.Counts {
				fmt.Fprintf(bw, ",%d", c)
			}
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(os.Stderr, "mhmsim: %d intervals, scenario=%s, cells=%d\n",
		len(maps), scenario, len(maps[0].Counts))
	return dumpMetrics()
}
