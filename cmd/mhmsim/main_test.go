package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/memheatmap/mhm/internal/obs"
)

func TestBuildScenario(t *testing.T) {
	for _, name := range []string{"clean", "app-addition", "shellcode", "rootkit"} {
		sc, err := buildScenario(name, 1000)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if name == "clean" && sc != nil {
			t.Error("clean scenario not nil")
		}
		if name != "clean" && sc == nil {
			t.Errorf("%s: nil scenario", name)
		}
	}
	if _, err := buildScenario("bogus", 1000); err == nil {
		t.Error("bogus scenario accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := run("clean", 50, 25, 2048, 1, false, -1, out, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header + 5 intervals of 10 ms in 50 ms.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "interval,startMicros") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunWithCellsColumn(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cells.csv")
	if err := run("clean", 20, 10, 8192, 1, true, -1, out, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(data), "\n", 2)[0]
	// 368 cells at δ=8 KB plus 4 fixed columns.
	if got := strings.Count(header, ","); got != 3+368 {
		t.Errorf("header has %d commas, want %d", got, 3+368)
	}
}

func TestRunRender(t *testing.T) {
	out := filepath.Join(t.TempDir(), "render.txt")
	if err := run("clean", 30, 10, 2048, 1, false, 1, out, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "MHM base=0xc0008000") {
		t.Errorf("render output missing header: %q", string(data)[:80])
	}
	// Out-of-range interval errors.
	if err := run("clean", 30, 10, 2048, 1, false, 99, out, "", ""); err == nil {
		t.Error("out-of-range render accepted")
	}
}

func TestRunRejectsBadScenario(t *testing.T) {
	if err := run("bogus", 10, 5, 2048, 1, false, -1, "-", "", ""); err == nil {
		t.Error("bad scenario accepted")
	}
}

func TestRunDumpsMetrics(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.csv")
	mp := filepath.Join(dir, "metrics.json")
	if err := run("clean", 50, 25, 2048, 1, false, -1, out, "", mp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["memometer.swaps"]; got != 5 {
		t.Errorf("memometer.swaps = %d, want 5 (50 ms / 10 ms)", got)
	}
	if snap.Counters["memometer.snooped"] == 0 || snap.Counters["memometer.accepted"] == 0 {
		t.Errorf("filter counters empty: %+v", snap.Counters)
	}
	if got := snap.Counters["securecore.mhm_emitted"]; got != 5 {
		t.Errorf("securecore.mhm_emitted = %d, want 5", got)
	}

	// Render mode must dump the snapshot too (it returns early from the
	// CSV path).
	mp2 := filepath.Join(dir, "render-metrics.json")
	if err := run("clean", 50, 25, 2048, 1, false, 1, out, "", mp2); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(mp2); err != nil {
		t.Fatalf("render mode skipped the metrics dump: %v", err)
	} else if _, err := obs.ParseSnapshot(data); err != nil {
		t.Fatal(err)
	}
}

func TestRunCapturesTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.csv")
	tr := filepath.Join(dir, "bus.trace")
	if err := run("clean", 30, 10, 2048, 1, false, -1, out, tr, ""); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(tr)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v (size %v)", err, fi)
	}
}
