// Command mhmfleet runs the fleet-scale detection simulator: a seeded
// population of device streams submitting memory-heat-map intervals
// through the fleet controller's admission, routing, hot-swap and
// autoscaling decision paths on a virtual clock. Two runs with the same
// seed and flags produce byte-identical decision traces and alarm
// sequences — the property the fleet test harness is built on.
//
// Usage:
//
//	mhmfleet [-streams N] [-seed N] [-horizon ms] [-interval ms]
//	         [-shards N] [-queue N] [-autoscale] [-overload factor]
//	         [-overload-frac f] [-anomaly-frac f] [-swap-at N]
//	         [-trace <path|->] [-metrics <path|->] [-json]
//
// The default report is a human-readable summary; -json emits the
// machine-readable result consumed by scripts/bench.sh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/memheatmap/mhm/internal/fleet"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/refresh"
)

func main() {
	streams := flag.Int("streams", 1000, "simulated device streams")
	seed := flag.Int64("seed", 1, "workload and schedule seed")
	horizonMs := flag.Int64("horizon", 300, "simulated duration in ms")
	intervalMs := flag.Int64("interval", 10, "monitoring interval in ms")
	shards := flag.Int("shards", 0, "initial shard count (0 = default)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	service := flag.Int64("service", 0, "virtual per-interval analysis cost in µs (0 = default)")
	workers := flag.Int("workers", 0, "scoring goroutines (0 = GOMAXPROCS; result-invariant)")
	autoscale := flag.Bool("autoscale", false, "enable obs-driven shard autoscaling")
	overload := flag.Float64("overload", 0, "overload fault: rate multiplier (>1 enables)")
	overloadFrac := flag.Float64("overload-frac", 0.5, "fraction of streams the overload fault hits")
	anomalyFrac := flag.Float64("anomaly-frac", 0, "fraction of streams turned anomalous mid-run")
	swapAt := flag.Int("swap-at", -1, "hot-swap every stream to a refreshed model at this interval index")
	refreshEvery := flag.Int("refresh", 0, "online model refresh: refresh after every N clean intervals (0 = off)")
	refreshWindow := flag.Int("refresh-window", 0, "refresh training-window capacity in intervals (0 = default 192)")
	refreshHoldout := flag.Int("refresh-holdout", 0, "refresh θ-calibration holdout capacity (0 = default 64)")
	tracePath := flag.String("trace", "", "write the decision trace to this path (- for stdout)")
	metricsPath := flag.String("metrics", "", "dump a metrics snapshot to this path at exit (- for stdout)")
	asJSON := flag.Bool("json", false, "emit the machine-readable result")
	flag.Parse()

	if err := run(config{
		streams: *streams, seed: *seed, horizonMs: *horizonMs, intervalMs: *intervalMs,
		shards: *shards, queue: *queue, service: *service, workers: *workers,
		autoscale: *autoscale, overload: *overload, overloadFrac: *overloadFrac,
		anomalyFrac: *anomalyFrac, swapAt: *swapAt,
		refreshEvery: *refreshEvery, refreshWindow: *refreshWindow, refreshHoldout: *refreshHoldout,
		tracePath: *tracePath, metricsPath: *metricsPath, asJSON: *asJSON,
	}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mhmfleet:", err)
		os.Exit(1)
	}
}

type config struct {
	streams                int
	seed                   int64
	horizonMs, intervalMs  int64
	shards, queue          int
	service                int64
	workers                int
	autoscale              bool
	overload, overloadFrac float64
	anomalyFrac            float64
	swapAt                 int
	refreshEvery           int
	refreshWindow          int
	refreshHoldout         int
	tracePath, metricsPath string
	asJSON                 bool
}

// result is the machine-readable report (consumed by scripts/bench.sh;
// field names are part of the bench contract).
type result struct {
	Streams         int     `json:"streams"`
	Seed            int64   `json:"seed"`
	HorizonMs       int64   `json:"horizon_ms"`
	Shards          int     `json:"shards_initial"`
	FinalShards     int     `json:"shards_final"`
	Submitted       int64   `json:"submitted"`
	Admitted        int64   `json:"admitted"`
	Shed            int64   `json:"shed"`
	Anomalous       int64   `json:"anomalous"`
	Alarms          int     `json:"alarms"`
	Swaps           int64   `json:"swaps_scheduled"`
	Resizes         int     `json:"resizes"`
	P50IntervalUs   float64 `json:"p50_interval_micros"`
	P99IntervalUs   float64 `json:"p99_interval_micros"`
	P99DeliveryUs   float64 `json:"p99_alarm_delivery_micros"`
	MaxQueueFrac    float64 `json:"max_queue_frac"`
	TraceLines      int     `json:"trace_lines"`
	WallMs          float64 `json:"wall_ms"`
	StreamsPerSec   float64 `json:"streams_per_sec"`
	IntervalsPerSec float64 `json:"intervals_per_sec"`
	// Online-refresh fields, populated when -refresh is set.
	Refreshes        int   `json:"refreshes,omitempty"`
	FullRebuilds     int   `json:"full_rebuilds,omitempty"`
	DriftAlarms      int   `json:"drift_alarms,omitempty"`
	RefreshSwaps     int   `json:"refresh_swaps,omitempty"`
	ModelVersion     int   `json:"model_version,omitempty"`
	DroppedIntervals int64 `json:"dropped_intervals"`
}

func buildFaults(c config) ([]fleet.Fault, error) {
	var faults []fleet.Fault
	horizon := c.horizonMs * 1000
	if c.overload > 1 {
		if c.overloadFrac <= 0 || c.overloadFrac > 1 {
			return nil, fmt.Errorf("overload-frac %g out of (0,1]", c.overloadFrac)
		}
		faults = append(faults, fleet.Fault{
			Kind:       fleet.FaultOverload,
			FromMicros: horizon / 4, UntilMicros: 3 * horizon / 4,
			StreamLo: 0, StreamHi: int(float64(c.streams) * c.overloadFrac),
			Factor: c.overload,
		})
	}
	if c.anomalyFrac > 0 {
		if c.anomalyFrac > 1 {
			return nil, fmt.Errorf("anomaly-frac %g out of (0,1]", c.anomalyFrac)
		}
		faults = append(faults, fleet.Fault{
			Kind:       fleet.FaultAnomaly,
			FromMicros: horizon / 3, UntilMicros: horizon,
			StreamLo: 0, StreamHi: int(float64(c.streams) * c.anomalyFrac),
		})
	}
	if c.swapAt >= 0 {
		faults = append(faults, fleet.Fault{Kind: fleet.FaultSwap, SwapInterval: c.swapAt})
	}
	return faults, nil
}

func run(c config, stdout io.Writer) error {
	faults, err := buildFaults(c)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if c.metricsPath != "" || c.autoscale {
		reg = obs.NewRegistry()
	}
	var scale *fleet.ScaleConfig
	if c.autoscale {
		scale = &fleet.ScaleConfig{}
	}
	tr := &fleet.Trace{}
	sim, err := fleet.NewSim(fleet.SimConfig{
		Streams:        c.streams,
		Seed:           c.seed,
		HorizonMicros:  c.horizonMs * 1000,
		IntervalMicros: c.intervalMs * 1000,
		Shards:         c.shards,
		QueueDepth:     c.queue,
		ServiceMicros:  c.service,
		Workers:        c.workers,
		Scale:          scale,
		Faults:         faults,
		Metrics:        reg,
		Trace:          tr,
	})
	if err != nil {
		return err
	}
	var loop *refresh.Loop
	if c.refreshEvery > 0 {
		loop, err = refresh.NewLoop(sim.Detector(), sim.Registry(), refresh.LoopConfig{
			Every: c.refreshEvery,
			Refresher: refresh.Config{
				Window:  c.refreshWindow,
				Holdout: c.refreshHoldout,
				Workers: c.workers,
			},
		})
		if err != nil {
			return err
		}
		sim.SetMaintainer(loop)
	}
	start := time.Now()
	res, err := sim.Run()
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if c.tracePath != "" {
		if err := writeFile(c.tracePath, tr.Bytes(), stdout); err != nil {
			return err
		}
	}
	if c.metricsPath != "" {
		if err := reg.DumpFile(c.metricsPath); err != nil {
			return err
		}
	}

	out := result{
		Streams: c.streams, Seed: c.seed, HorizonMs: c.horizonMs,
		Shards: c.shards, FinalShards: res.FinalShards,
		Submitted: res.Submitted, Admitted: res.Admitted, Shed: res.Shed,
		Anomalous: res.Anomalous, Alarms: len(res.Alarms),
		Swaps: res.SwapsScheduled, Resizes: res.Resizes,
		P50IntervalUs: res.P50IntervalMicros, P99IntervalUs: res.P99IntervalMicros,
		P99DeliveryUs: res.P99DeliveryMicros, MaxQueueFrac: res.MaxQueueFrac,
		TraceLines: tr.Lines(),
		WallMs:     float64(wall.Nanoseconds()) / 1e6,
	}
	out.DroppedIntervals = res.DroppedIntervals
	if loop != nil {
		if err := loop.Err(); err != nil {
			return fmt.Errorf("refresh loop: %w", err)
		}
		st := loop.Stats()
		out.Refreshes = st.Refreshes
		out.FullRebuilds = st.FullRebuilds
		out.DriftAlarms = st.DriftAlarms
		out.RefreshSwaps = st.SwapsScheduled
		out.ModelVersion = st.Version
	}
	if secs := wall.Seconds(); secs > 0 {
		out.StreamsPerSec = float64(c.streams) / secs
		out.IntervalsPerSec = float64(res.Admitted) / secs
	}
	if c.asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	_, err = fmt.Fprintf(stdout,
		"fleet: %d streams over %d ms (seed %d)\n"+
			"  submitted %d  admitted %d  shed %d  anomalous %d  alarms %d\n"+
			"  shards %d -> %d (%d resizes)  swaps %d  max queue %.0f%%\n"+
			"  interval latency p50 %.0fµs p99 %.0fµs  alarm delivery p99 %.0fµs (virtual)\n"+
			"  wall %.1f ms  %.0f streams/s  %.0f intervals/s\n",
		out.Streams, out.HorizonMs, out.Seed,
		out.Submitted, out.Admitted, out.Shed, out.Anomalous, out.Alarms,
		out.Shards, out.FinalShards, out.Resizes, out.Swaps, 100*out.MaxQueueFrac,
		out.P50IntervalUs, out.P99IntervalUs, out.P99DeliveryUs,
		out.WallMs, out.StreamsPerSec, out.IntervalsPerSec)
	if err == nil && loop != nil {
		_, err = fmt.Fprintf(stdout,
			"  refresh: %d refreshes (%d full)  drift alarms %d  swaps %d  model v%d  dropped %d\n",
			out.Refreshes, out.FullRebuilds, out.DriftAlarms,
			out.RefreshSwaps, out.ModelVersion, out.DroppedIntervals)
	}
	return err
}

func writeFile(path string, data []byte, stdout io.Writer) error {
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
