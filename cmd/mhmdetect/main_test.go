package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTrainThenDetectEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	model := filepath.Join(t.TempDir(), "det.json")
	// Tiny training volume: the CLI path is what's under test.
	if err := trainCmd(model, 2, 500, 1, true); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(model); err != nil || fi.Size() == 0 {
		t.Fatalf("model file: %v", err)
	}
	for _, scenario := range []string{"clean", "rootkit"} {
		if err := detectCmd(model, scenario, 500, 250, 1, true); err != nil {
			t.Errorf("%s: %v", scenario, err)
		}
	}
	if err := detectCmd(model, "bogus", 500, 250, 1, false); err == nil {
		t.Error("bogus scenario accepted")
	}
	if err := detectCmd(filepath.Join(t.TempDir(), "missing.json"), "clean", 500, 250, 1, false); err == nil {
		t.Error("missing model accepted")
	}
}
