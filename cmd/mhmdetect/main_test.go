package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/memheatmap/mhm/internal/obs"
)

func TestTrainThenDetectEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	model := filepath.Join(t.TempDir(), "det.json")
	// Tiny training volume: the CLI path is what's under test.
	if err := trainCmd(model, 2, 500, 1, true); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(model); err != nil || fi.Size() == 0 {
		t.Fatalf("model file: %v", err)
	}
	for _, scenario := range []string{"clean", "rootkit"} {
		if err := detectCmd(model, scenario, 500, 250, 1, true, ""); err != nil {
			t.Errorf("%s: %v", scenario, err)
		}
	}
	if err := detectCmd(model, "bogus", 500, 250, 1, false, ""); err == nil {
		t.Error("bogus scenario accepted")
	}
	if err := detectCmd(filepath.Join(t.TempDir(), "missing.json"), "clean", 500, 250, 1, false, ""); err == nil {
		t.Error("missing model accepted")
	}

	// -metrics: the snapshot must land on disk, parse against the
	// frozen schema, and carry the online loop's core series.
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	if err := detectCmd(model, "rootkit", 500, 250, 1, false, metricsPath); err != nil {
		t.Fatalf("detect with metrics: %v", err)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["pipeline.intervals"]; got != 50 {
		t.Errorf("pipeline.intervals = %d, want 50 (500 ms / 10 ms)", got)
	}
	for _, name := range []string{"pipeline.overruns", "alarm.raised", "memometer.snooped", "securecore.mhm_emitted"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing from snapshot", name)
		}
	}
	for _, name := range []string{"pipeline.analysis_micros", "core.project_micros", "core.score_micros"} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("histogram %q missing from snapshot", name)
			continue
		}
		if h.Count == 0 {
			t.Errorf("histogram %q recorded nothing", name)
		}
	}
}
