// Command mhmdetect trains a memory-heat-map anomaly detector on the
// simulated platform, persists it, and classifies scenario runs against
// it — the secure core's workflow as a CLI.
//
// Train a model:
//
//	mhmdetect -train -model detector.json [-runs 5] [-run-ms 2000]
//
// Detect over a scenario:
//
//	mhmdetect -model detector.json -scenario rootkit [-duration 4000] [-event 1500]
//	          [-metrics <path|->]
//
// With -metrics, detection additionally runs the online pipeline
// (per-interval classification, alarm debouncing, deadline accounting)
// and dumps an observability snapshot — stage latencies, interval and
// overrun counters, alarm transitions — as JSON at exit.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/experiments"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/pipeline"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/stats"
	"github.com/memheatmap/mhm/internal/workload"
)

func main() {
	train := flag.Bool("train", false, "train a detector and save it")
	model := flag.String("model", "detector.json", "model file path")
	runs := flag.Int("runs", 5, "training runs (train mode)")
	runMs := flag.Int64("run-ms", 2000, "length of each training run in ms")
	scenario := flag.String("scenario", "clean", "scenario to classify (detect mode)")
	durationMs := flag.Int64("duration", 4000, "detection run length in ms")
	eventMs := flag.Int64("event", 1500, "scenario event time in ms")
	seed := flag.Int64("seed", 1, "platform seed")
	residual := flag.Bool("residual", false, "calibrate/apply the residual (distance-from-memory-space) extension")
	metrics := flag.String("metrics", "", "detect mode: dump a metrics snapshot to this path at exit (- for stdout)")
	flag.Parse()

	var err error
	if *train {
		err = trainCmd(*model, *runs, *runMs, *seed, *residual)
	} else {
		err = detectCmd(*model, *scenario, *durationMs, *eventMs, *seed, *residual, *metrics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mhmdetect:", err)
		os.Exit(1)
	}
}

func trainCmd(model string, runs int, runMs int64, seed int64, residual bool) error {
	scale := experiments.PaperScale()
	scale.TrainRuns = runs
	scale.TrainRunMicros = runMs * 1000
	scale.CalibRunMicros = runMs * 1000
	scale.PCAOptions = pca.Options{VarianceFraction: 0.9999, MaxComponents: 24}
	scale.GMMOptions = gmm.Options{Components: 5, Restarts: 5}
	if residual {
		scale.Quantiles = []float64{0.005, 0.01}
	}
	lab, err := experiments.NewLab(seed, scale)
	if err != nil {
		return err
	}
	det, rep, err := lab.TrainDetector(100)
	if err != nil {
		return err
	}
	if residual {
		// Residual thresholds need a second calibration pass over fresh
		// normal data; reuse Train via core.Config would retrain, so
		// calibrate directly from quantiles of residuals.
		calib, err := lab.CollectNormal(100+int64(runs)+1, runMs*1000)
		if err != nil {
			return err
		}
		det.ResidualThresholds = nil
		residuals := make([]float64, len(calib))
		for i, m := range calib {
			if residuals[i], err = det.Residual(m); err != nil {
				return err
			}
		}
		for _, p := range []float64{0.005, 0.01} {
			theta, err := stats.Quantile(residuals, 1-p)
			if err != nil {
				return err
			}
			det.ResidualThresholds = append(det.ResidualThresholds, core.Threshold{P: p, Theta: theta})
		}
		fmt.Println("residual thresholds calibrated")
	}
	fmt.Print(rep.String())
	f, err := os.Create(model)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := det.Save(f); err != nil {
		return err
	}
	fmt.Printf("model saved to %s\n", model)
	return nil
}

func detectCmd(model, scenario string, durationMs, eventMs, seed int64, residual bool, metricsPath string) error {
	f, err := os.Open(model)
	if err != nil {
		return fmt.Errorf("open model (train one first with -train): %w", err)
	}
	det, err := core.Load(f)
	_ = f.Close() // read-only handle; a close error cannot corrupt anything
	if err != nil {
		return err
	}

	// Observability: instrument every stage of the online loop and run
	// the real per-interval pipeline alongside the batch classification.
	var (
		reg *obs.Registry
		pl  *pipeline.Pipeline
	)
	if metricsPath != "" {
		reg = obs.NewRegistry()
		det.Instrument(reg)
		if pl, err = pipeline.New(det, pipeline.Config{Quantile: 0.01, Metrics: reg}); err != nil {
			return err
		}
	}

	img, err := kernelmap.NewImage(seed)
	if err != nil {
		return err
	}
	var sc attack.Scenario
	switch scenario {
	case "clean":
	case "app-addition":
		sc = &attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: eventMs * 1000}
	case "shellcode":
		sc = &attack.Shellcode{Host: "bitcount", InjectAt: eventMs * 1000}
	case "rootkit":
		sc = &attack.RootkitLKM{LoadAt: eventMs * 1000}
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	cfg := securecore.SessionConfig{
		Region:         det.Region,
		IntervalMicros: 10000,
		NoiseSeed:      seed + 5000, // fresh data, not the training seeds
	}
	if pl != nil {
		cfg.OnMHM = pl.Process
	}
	session, err := attack.BuildScenarioSession(img, sc, cfg)
	if err != nil {
		return err
	}
	if reg != nil {
		session.Monitor.SetMetrics(reg)
	}
	maps, err := session.Run(durationMs * 1000)
	if err != nil {
		return err
	}
	verdicts, err := det.ClassifySeries(maps)
	if err != nil {
		return err
	}

	fmt.Println("interval,logDensity,flags")
	alarmTotal := 0
	for i, v := range verdicts {
		flags := ""
		for _, th := range det.Thresholds {
			if v.Anomalous[th.P] {
				flags += fmt.Sprintf("θ%g ", th.P*100)
			}
		}
		if residual && len(det.ResidualThresholds) > 0 {
			anom, _, _, err := det.ClassifyWithResidual(maps[i], 0.01)
			if err != nil {
				return err
			}
			if anom && flags == "" {
				flags = "residual "
			}
		}
		if flags != "" {
			alarmTotal++
		}
		fmt.Printf("%d,%.2f,%s\n", v.Index, v.LogDensity, flags)
	}
	fmt.Fprintf(os.Stderr, "mhmdetect: scenario=%s intervals=%d alarms=%d\n",
		scenario, len(verdicts), alarmTotal)
	if reg != nil {
		bud := pl.Budget()
		fmt.Fprintf(os.Stderr, "mhmdetect: online analysis mean=%.1fµs max=%.1fµs overruns=%d raises=%d\n",
			bud.MeanMicros, bud.MaxMicros, bud.Overruns, len(pl.Alarms()))
		if err := reg.DumpFile(metricsPath); err != nil {
			return fmt.Errorf("dump metrics: %w", err)
		}
	}
	return nil
}
