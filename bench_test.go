// Package mhm_test holds the repository benchmark harness: one benchmark
// per table and figure of the paper's evaluation (§5), plus
// microbenchmarks of the pipeline stages. Run with:
//
//	go test -bench=. -benchmem
package mhm_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/experiments"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/pipeline"
	"github.com/memheatmap/mhm/internal/trace"
	"github.com/memheatmap/mhm/internal/workload"
)

// Shared expensive fixtures, built once across benchmarks.
var (
	fixOnce sync.Once
	fixErr  error
	fixLab  *experiments.Lab
	fixDet  *core.Detector     // δ=2KB, variance-selected L'
	fixDet9 *core.Detector     // δ=2KB, L'=9 (paper's §5.4 base config)
	fixDetC *core.Detector     // δ=8KB, L'=9 (coarse config, L=368)
	fixDet5 *core.Detector     // δ=2KB, L'=5
	fixVecs [][]float64        // fresh normal vectors at δ=2KB
	fixMaps []*heatmap.HeatMap // fresh normal maps at δ=2KB
	fixVecC [][]float64        // fresh normal vectors at δ=8KB
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixLab, fixErr = experiments.NewLab(1, experiments.QuickScale())
		if fixErr != nil {
			return
		}
		if fixDet, _, fixErr = fixLab.TrainDetector(100); fixErr != nil {
			return
		}
		mk := func(gran uint64, lprime int, seedBase int64) (*core.Detector, error) {
			lab := &experiments.Lab{Img: fixLab.Img, Scale: fixLab.Scale}
			lab.Scale.Gran = gran
			lab.Scale.PCAOptions = pca.Options{Components: lprime, Parallel: true}
			d, _, err := lab.TrainDetector(seedBase)
			return d, err
		}
		if fixDet9, fixErr = mk(2048, 9, 200); fixErr != nil {
			return
		}
		if fixDetC, fixErr = mk(8192, 9, 300); fixErr != nil {
			return
		}
		if fixDet5, fixErr = mk(2048, 5, 400); fixErr != nil {
			return
		}
		fixMaps, fixErr = fixLab.CollectNormal(9999, 500_000)
		if fixErr != nil {
			return
		}
		for _, m := range fixMaps {
			fixVecs = append(fixVecs, m.Vector())
		}
		coarse := &experiments.Lab{Img: fixLab.Img, Scale: fixLab.Scale}
		coarse.Scale.Gran = 8192
		cmaps, err := coarse.CollectNormal(9999, 500_000)
		if err != nil {
			fixErr = err
			return
		}
		for _, m := range cmaps {
			fixVecC = append(fixVecC, m.Vector())
		}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
}

// BenchmarkFig1ExampleMHM regenerates Fig. 1: capture and render one
// 10 ms MHM of the kernel .text segment.
func BenchmarkFig1ExampleMHM(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixLab.Fig1(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainPipeline regenerates §5.2: full training (simulation,
// eigenmemory extraction, GMM fit, threshold calibration).
func BenchmarkTrainPipeline(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := fixLab.TrainDetector(int64(1000 + i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7AppAddition regenerates Fig. 7: the 500-interval qsort
// launch/exit run classified end to end.
func BenchmarkFig7AppAddition(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixLab.Fig7(fixDet, int64(700+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Shellcode regenerates Fig. 8: the 400-interval shellcode
// run classified end to end.
func BenchmarkFig8Shellcode(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixLab.Fig8(fixDet, int64(800+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9TrafficVolume regenerates Fig. 9: the rootkit run scored
// by the traffic-volume baseline.
func BenchmarkFig9TrafficVolume(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixLab.Fig9(int64(900 + i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Rootkit regenerates Fig. 10: the rootkit run scored by
// the MHM detector.
func BenchmarkFig10Rootkit(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixLab.Fig10(fixDet, int64(900+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClassify times one MHM classification, the §5.4 analysis-time
// measurement.
func benchClassify(b *testing.B, det *core.Detector, vecs [][]float64) {
	b.Helper()
	if len(vecs) == 0 {
		b.Fatal("no vectors")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.LogDensityVector(vecs[i%len(vecs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisTime_L1472_Lp9_J5 is the paper's base configuration
// (358 µs on its ARM secure core).
func BenchmarkAnalysisTime_L1472_Lp9_J5(b *testing.B) {
	fixtures(b)
	benchClassify(b, fixDet9, fixVecs)
}

// BenchmarkAnalysisTimeInstrumented_L1472_Lp9_J5 is the base
// configuration with live obs histograms on both stages — compare
// against BenchmarkAnalysisTime_L1472_Lp9_J5 to see the
// instrumentation overhead (budget: under 5%).
func BenchmarkAnalysisTimeInstrumented_L1472_Lp9_J5(b *testing.B) {
	fixtures(b)
	det := *fixDet9
	det.Instrument(obs.NewRegistry())
	benchClassify(b, &det, fixVecs)
}

// BenchmarkAnalysisTime_L368_Lp9_J5 is the coarse-granularity
// configuration (paper: 100 µs).
func BenchmarkAnalysisTime_L368_Lp9_J5(b *testing.B) {
	fixtures(b)
	benchClassify(b, fixDetC, fixVecC)
}

// BenchmarkAnalysisTime_L1472_Lp5_J5 is the reduced-eigenmemory
// configuration (paper: 216 µs).
func BenchmarkAnalysisTime_L1472_Lp5_J5(b *testing.B) {
	fixtures(b)
	benchClassify(b, fixDet5, fixVecs)
}

// BenchmarkScoreBatch times the blocked B=64 batch kernel on the §5.4
// base configuration; ns/op is per MHM, directly comparable to
// BenchmarkAnalysisTime_L1472_Lp9_J5 (the single-vector loop).
func BenchmarkScoreBatch(b *testing.B) {
	fixtures(b)
	eng, err := fixDet9.ScoreEngine()
	if err != nil {
		b.Fatal(err)
	}
	s := eng.NewScorer()
	const batch = 64
	vecs := make([][]float64, batch)
	for i := range vecs {
		vecs[i] = fixVecs[i%len(fixVecs)]
	}
	dst := make([]float64, batch)
	if err := s.ScoreBatch(dst, vecs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		if err := s.ScoreBatch(dst, vecs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedPipeline times the multi-stream online scorer end to
// end: submit, queue, shard worker scoring, record append. ns/op is per
// interval across 4 concurrent streams.
func BenchmarkShardedPipeline(b *testing.B) {
	fixtures(b)
	const streams = 4
	sh, err := pipeline.NewSharded(fixDet, streams, pipeline.ShardedConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sh.Submit(i%streams, fixMaps[i%len(fixMaps)]); err != nil {
			b.Fatal(err)
		}
	}
	sh.Close()
}

// BenchmarkSessionSimulation times the monitored-core substrate: one
// second of simulated system execution producing 100 MHMs.
func BenchmarkSessionSimulation(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixLab.CollectNormal(int64(5000+i), 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemometerSnoop times the hardware model's per-burst cost.
func BenchmarkMemometerSnoop(b *testing.B) {
	dev := memometer.New()
	err := dev.Configure(memometer.Config{
		Region:         heatmap.Def{AddrBase: kernelmap.TextBase, Size: kernelmap.TextSize, Gran: 2048},
		IntervalMicros: 10_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(i)
		if err := dev.SnoopBurst(t, kernelmap.TextBase+uint64(i*64)%kernelmap.TextSize, 3); err != nil {
			b.Fatal(err)
		}
		if dev.HasPending() {
			if _, err := dev.Collect(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHeatMapRecord times the MHM cell update path.
func BenchmarkHeatMapRecord(b *testing.B) {
	m, err := heatmap.New(heatmap.Def{AddrBase: kernelmap.TextBase, Size: kernelmap.TextSize, Gran: 2048})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Record(kernelmap.TextBase+uint64(i*97)%kernelmap.TextSize, 1)
	}
}

// BenchmarkServiceEmit times kernel-service burst generation.
func BenchmarkServiceEmit(b *testing.B) {
	img, err := kernelmap.NewImage(1)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := img.Service(kernelmap.SvcRead)
	if err != nil {
		b.Fatal(err)
	}
	var buf = svc.Emit(nil, 0, 1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = svc.Emit(nil, int64(i), 1, buf[:0])
	}
}

// BenchmarkPCAProject times the eigenmemory projection (Eq. 1) alone.
func BenchmarkPCAProject(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := fixDet9.PCA.Project(fixVecs[i%len(fixVecs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGMMLogProb times the mixture density evaluation (Eq. 2) alone.
func BenchmarkGMMLogProb(b *testing.B) {
	fixtures(b)
	reduced := make([][]float64, len(fixVecs))
	for i, v := range fixVecs {
		w, err := fixDet9.PCA.Project(v)
		if err != nil {
			b.Fatal(err)
		}
		reduced[i] = w
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fixDet9.GMM.LogProb(reduced[i%len(reduced)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGMMTrain times the EM fit on reduced training data.
func BenchmarkGMMTrain(b *testing.B) {
	fixtures(b)
	reduced := make([][]float64, len(fixVecs))
	for i, v := range fixVecs {
		w, err := fixDet9.PCA.Project(v)
		if err != nil {
			b.Fatal(err)
		}
		reduced[i] = w
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gmm.Train(reduced, gmm.Options{Components: 5, Restarts: 1, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEigenmemoryTrain times the PCA stage on a full quick-scale
// training matrix (L = 1472).
func BenchmarkEigenmemoryTrain(b *testing.B) {
	fixtures(b)
	maps, err := fixLab.CollectNormal(8888, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	vectors := make([][]float64, len(maps))
	for i, m := range maps {
		vectors[i] = m.Vector()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pca.Train(vectors, pca.Options{Components: 9, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadJobGeneration times per-job segment synthesis.
func BenchmarkWorkloadJobGeneration(b *testing.B) {
	img, err := kernelmap.NewImage(1)
	if err != nil {
		b.Fatal(err)
	}
	task, err := workload.BuildTask(img, workload.ShaSpec())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task.Behavior.NewJob(int64(i), rng)
	}
}

// Training-engine fixtures: fixed train/calib map sets at quick scale
// (L = 1472 like the paper; 3 x 1 s of captures).
var (
	trnOnce sync.Once
	trnErr  error
	trnSet  []*heatmap.HeatMap
	trnCal  []*heatmap.HeatMap
)

func trainFixtures(b *testing.B) {
	b.Helper()
	fixtures(b)
	trnOnce.Do(func() {
		for run := 0; run < 3; run++ {
			maps, err := fixLab.CollectNormal(int64(7000+run), 1_000_000)
			if err != nil {
				trnErr = err
				return
			}
			trnSet = append(trnSet, maps...)
		}
		trnCal, trnErr = fixLab.CollectNormal(7100, 1_000_000)
	})
	if trnErr != nil {
		b.Fatal(trnErr)
	}
}

// benchCoreTrain times the full §5.2 model build (PCA, batch
// projection, J=5 GMM with the paper's 10 restarts, calibration) on
// prebuilt maps, excluding the simulation.
func benchCoreTrain(b *testing.B, workers int, parallel bool) {
	trainFixtures(b)
	cfg := core.Config{
		PCA:     pca.Options{Components: 9, Parallel: parallel},
		GMM:     gmm.Options{Components: 5, Restarts: 10, Parallel: parallel, Seed: 1},
		Workers: workers,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(trnSet, trnCal, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreTrainSerial is the training engine's single-worker
// baseline: every stage serial.
func BenchmarkCoreTrainSerial(b *testing.B) { benchCoreTrain(b, 1, false) }

// BenchmarkCoreTrainParallel runs the identical (bit-identical) build
// with the engine fanned out over GOMAXPROCS workers and parallel
// restarts.
func BenchmarkCoreTrainParallel(b *testing.B) { benchCoreTrain(b, runtime.GOMAXPROCS(0), true) }

// benchPCATrain times the eigenmemory stage (tiled mean/Φ/variance
// build + subspace iteration) alone.
func benchPCATrain(b *testing.B, workers int, parallel bool) {
	trainFixtures(b)
	vecs, err := heatmap.PackVectors(trnSet)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pca.Train(vecs, pca.Options{Components: 9, Workers: workers, Parallel: parallel}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPCATrain is the serial eigenmemory stage.
func BenchmarkPCATrain(b *testing.B) { benchPCATrain(b, 1, false) }

// BenchmarkPCATrainParallel is the same stage over GOMAXPROCS workers.
func BenchmarkPCATrainParallel(b *testing.B) { benchPCATrain(b, runtime.GOMAXPROCS(0), true) }

// Serialized trace fixture for the ingest benchmarks.
var (
	rawTraceOnce sync.Once
	rawTrace     []byte
	rawTraceN    int
)

func traceFixture(b *testing.B) {
	b.Helper()
	rawTraceOnce.Do(func() {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		rng := rand.New(rand.NewSource(1))
		const n = 200_000
		for i := 0; i < n; i++ {
			_ = w.Write(trace.Access{
				Time:  int64(i),
				Addr:  kernelmap.TextBase + uint64(rng.Intn(1<<21)),
				Count: uint32(1 + rng.Intn(8)),
			})
		}
		_ = w.Flush()
		rawTrace = buf.Bytes()
		rawTraceN = n
	})
}

// BenchmarkTraceReadRecord decodes a 200k-event capture one record at a
// time; ns/op is per event.
func BenchmarkTraceReadRecord(b *testing.B) {
	traceFixture(b)
	b.ResetTimer()
	for done := 0; done < b.N; done += rawTraceN {
		r := trace.NewReader(bytes.NewReader(rawTrace))
		n := 0
		for {
			if _, err := r.Read(); err != nil {
				break
			}
			n++
		}
		if n != rawTraceN {
			b.Fatalf("decoded %d events, want %d", n, rawTraceN)
		}
	}
}

// BenchmarkScoreSparse times the sparse panel product on run-length
// compressed intervals of the §5.4 base configuration; ns/op is per
// MHM, directly comparable to BenchmarkScoreBatch (the dense blocked
// kernel) and BenchmarkAnalysisTime_L1472_Lp9_J5 (the staged
// single-vector loop).
func BenchmarkScoreSparse(b *testing.B) {
	fixtures(b)
	eng, err := fixDet9.ScoreEngine()
	if err != nil {
		b.Fatal(err)
	}
	s := eng.NewScorer()
	sparse := make([]*heatmap.Sparse, len(fixMaps))
	for i, m := range fixMaps {
		sparse[i] = m.Sparsify(nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := sparse[i%len(sparse)]
		if _, err := s.ScoreSparse(sp.RunStart, sp.RunLen, sp.Counts); err != nil {
			b.Fatal(err)
		}
	}
}

// Fused-path fixture: one serialized capture spanning fusedIntervals
// 10 ms intervals of kernel-text activity at 200 events per interval.
const fusedIntervalMicros = 10_000

var (
	fusedTraceOnce sync.Once
	fusedTrace     []byte
	fusedIntervals int
)

func fusedTraceFixture(b *testing.B) {
	b.Helper()
	fusedTraceOnce.Do(func() {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		rng := rand.New(rand.NewSource(7))
		const perInterval = 200
		const intervals = 512
		for i := 0; i < intervals*perInterval; i++ {
			_ = w.Write(trace.Access{
				Time:  int64(i) * (fusedIntervalMicros / perInterval),
				Addr:  kernelmap.TextBase + uint64(rng.Intn(1<<21)),
				Count: uint32(1 + rng.Intn(8)),
			})
		}
		_ = w.Flush()
		fusedTrace = buf.Bytes()
		fusedIntervals = intervals
	})
}

// BenchmarkFusedTraceScore times the fused zero-copy ingest path end
// to end — trace.ReadBatch → memometer.SnoopBatch → sparse collect →
// ScoreSparse — so ns/op is per scored interval, comparable to the
// staged AnalysisTime benchmarks plus their collection cost.
// bytes/interval reports the serialized capture volume each interval
// ingests. allocs/op must stay 0: the per-pass reader and device
// reconfiguration amortize below one allocation per interval, and the
// steady-state loop itself is allocation-free (the bench-smoke CI
// gate).
func BenchmarkFusedTraceScore(b *testing.B) {
	fixtures(b)
	fusedTraceFixture(b)
	ts, err := fixDet9.NewTraceScorer(fusedIntervalMicros, 256)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := ts.Device().Config()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for done := 0; done < b.N; done += fusedIntervals {
		// Reconfiguring rewinds the device clock so the same capture can
		// be replayed every pass.
		if err := ts.Device().Configure(cfg); err != nil {
			b.Fatal(err)
		}
		r := trace.NewReader(bytes.NewReader(fusedTrace))
		n := 0
		emit := func(core.IntervalScore) error { n++; return nil }
		if err := ts.Run(r, emit); err != nil {
			b.Fatal(err)
		}
		if err := ts.FlushAt(int64(fusedIntervals)*fusedIntervalMicros, emit); err != nil {
			b.Fatal(err)
		}
		if n != fusedIntervals {
			b.Fatalf("scored %d intervals, want %d", n, fusedIntervals)
		}
	}
	// After the loop: ResetTimer wipes custom metrics, so report last.
	b.ReportMetric(float64(len(fusedTrace))/float64(fusedIntervals), "bytes/interval")
}

// BenchmarkTraceReadBatch decodes the same capture through ReadBatch
// blocks of 256; ns/op is per event, directly comparable to
// BenchmarkTraceReadRecord.
func BenchmarkTraceReadBatch(b *testing.B) {
	traceFixture(b)
	dst := make([]trace.Access, 256)
	b.ResetTimer()
	for done := 0; done < b.N; done += rawTraceN {
		r := trace.NewReader(bytes.NewReader(rawTrace))
		n := 0
		for {
			k, err := r.ReadBatch(dst)
			n += k
			if err != nil {
				break
			}
		}
		if n != rawTraceN {
			b.Fatalf("decoded %d events, want %d", n, rawTraceN)
		}
	}
}
