// Quickstart: train a memory-heat-map anomaly detector on normal
// behaviour of the simulated real-time system, then score fresh
// intervals — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

func main() {
	// 1. The platform: a synthetic embedded kernel image and the paper's
	// periodic task set (FFT, bitcount, basicmath, sha).
	img, err := kernelmap.NewImage(1)
	if err != nil {
		log.Fatal(err)
	}
	region := heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 2048}
	fmt.Printf("monitoring kernel .text: base=%#x size=%d bytes, δ=2 KB → %d cells\n",
		region.AddrBase, region.Size, region.Cells())

	// 2. Collect normal memory heat maps: one MHM per 10 ms interval.
	collect := func(noiseSeed int64, micros int64) []*heatmap.HeatMap {
		tasks, err := workload.PaperTaskSet(img)
		if err != nil {
			log.Fatal(err)
		}
		s, err := securecore.NewSession(img, tasks, securecore.SessionConfig{
			Region: region, NoiseSeed: noiseSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		maps, err := s.Run(micros)
		if err != nil {
			log.Fatal(err)
		}
		return maps
	}
	var train []*heatmap.HeatMap
	for run := int64(0); run < 3; run++ {
		train = append(train, collect(run, 1_000_000)...)
	}
	calib := collect(50, 1_000_000)
	fmt.Printf("collected %d training and %d calibration MHMs\n", len(train), len(calib))

	// 3. Train: eigenmemory PCA (99.99% variance) + GMM (J=5), calibrate
	// θ0.5 and θ1 thresholds on the held-out normal set.
	det, err := core.Train(train, calib, core.Config{
		PCA: pca.Options{VarianceFraction: 0.9999, MaxComponents: 16},
		GMM: gmm.Options{Components: 5, Restarts: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	_, lprime := det.Dim()
	fmt.Printf("trained: %d eigenmemories (%.4f%% variance), %d GMM components\n",
		lprime, 100*det.PCA.VarianceExplained(), len(det.GMM.Components))
	for _, th := range det.Thresholds {
		fmt.Printf("  θ%g = %.2f\n", th.P*100, th.Theta)
	}

	// 4. Score fresh normal intervals...
	fresh := collect(99, 200_000)
	normalAlarms := 0
	for _, m := range fresh {
		if anom, _, err := det.Classify(m, 0.01); err != nil {
			log.Fatal(err)
		} else if anom {
			normalAlarms++
		}
	}
	fmt.Printf("fresh normal run: %d/%d intervals flagged at θ1\n", normalAlarms, len(fresh))

	// 5. ...and an attacked run: qsort launched at t = 1 s.
	sc := &attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: 1_000_000}
	s, err := attack.BuildScenarioSession(img, sc, securecore.SessionConfig{
		Region: region, NoiseSeed: 123,
	})
	if err != nil {
		log.Fatal(err)
	}
	maps, err := s.Run(2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	attackAlarms := 0
	for _, m := range maps[101:] {
		if anom, _, err := det.Classify(m, 0.01); err != nil {
			log.Fatal(err)
		} else if anom {
			attackAlarms++
		}
	}
	fmt.Printf("after qsort launch: %d/%d intervals flagged at θ1\n", attackAlarms, len(maps)-101)
}
