// Online_monitor demonstrates the full deployment loop of the paper's
// architecture: train offline, then watch a live system with
// per-interval analysis on the secure core, debounced alarms, and an
// analysis-time budget check — here against a kernel rootkit loaded
// mid-run.
package main

import (
	"fmt"
	"log"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/experiments"
	"github.com/memheatmap/mhm/internal/forensics"
	"github.com/memheatmap/mhm/internal/pipeline"
	"github.com/memheatmap/mhm/internal/plot"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

func main() {
	lab, err := experiments.NewLab(1, experiments.QuickScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1 — offline training on normal behaviour")
	det, rep, err := lab.TrainDetector(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())

	fmt.Println("\nphase 2 — live monitoring (rootkit loads at t = 1.5 s)")
	p, err := pipeline.New(det, pipeline.Config{
		Quantile: 0.01,
		Alarm:    alarm.Config{RaiseAfter: 2, ClearAfter: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	const loadAt = 1_505_000
	sc := &attack.RootkitLKM{LoadAt: loadAt}
	tasks, err := workload.PaperTaskSet(lab.Img)
	if err != nil {
		log.Fatal(err)
	}
	if err := sc.Transform(tasks); err != nil {
		log.Fatal(err)
	}
	session, err := securecore.NewSession(lab.Img, tasks, securecore.SessionConfig{
		NoiseSeed: 4242,
		OnMHM:     p.Process, // every completed MHM analyzed immediately
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sc.Install(session.Scheduler, session.Image); err != nil {
		log.Fatal(err)
	}
	if _, err := session.Run(3_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %d intervals online\n", len(p.Records()))
	for _, ev := range p.Alarms() {
		kind := "ALARM RAISED"
		if !ev.Raised {
			kind = "alarm cleared"
		}
		fmt.Printf("  %s at interval %d (t = %d ms)\n", kind, ev.Interval, ev.Time/1000)
	}
	rep2 := p.Analyze(150)
	if rep2.DetectionLatencyIntervals >= 0 {
		fmt.Printf("detection latency: %d ms after the rootkit load\n", rep2.DetectionLatencyIntervals*10)
	}
	fmt.Printf("false raises before the attack: %d\n", rep2.FalseRaises)

	budget := p.Budget()
	fmt.Printf("analysis cost: mean %.1f µs, max %.1f µs per %d ms interval (%d overruns)\n",
		budget.MeanMicros, budget.MaxMicros, budget.IntervalMicros/1000, budget.Overruns)

	// Render the density series the secure core saw.
	ys := make([]float64, len(p.Records()))
	for i, r := range p.Records() {
		ys[i] = r.LogDensity
	}
	theta, err := det.Threshold(0.01)
	if err != nil {
		log.Fatal(err)
	}
	chart, err := plot.Line(ys, plot.Options{
		Width:  100,
		Height: 14,
		Title:  "\nlog probability density per interval (online)",
		HLines: map[string]float64{"θ1": theta},
		Marks:  map[string]int{"insmod": 150},
		YLabel: "log Pr(M)",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(chart)

	// Phase 3 — forensics: which kernel code deviated at the alarm?
	fmt.Println("\nphase 3 — explaining the insmod interval")
	explained, err := forensics.Explain(det, lab.Img, session.Maps()[150], 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(explained.String())
}
