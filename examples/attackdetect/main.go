// Attackdetect runs every catalogued scenario — the paper's §5.3
// attacks, the stealthy v2 corpus (mimicry, slow drift) and the benign
// workload changes — against one trained detector and prints
// per-scenario detection summaries. Post-event flags are detections for
// attack scenarios and false positives for workload-change scenarios.
package main

import (
	"fmt"
	"log"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/experiments"
)

func main() {
	if err := run(150, 300); err != nil {
		log.Fatal(err)
	}
}

// run trains a quick-scale detector and sweeps the scenario catalog
// with each event at interval eventIv of a horizonIv-interval run.
func run(eventIv, horizonIv int) error {
	lab, err := experiments.NewLab(1, experiments.QuickScale())
	if err != nil {
		return err
	}
	fmt.Println("training detector on normal system behaviour...")
	det, rep, err := lab.TrainDetector(100)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())

	iv := lab.Scale.IntervalMicros
	eventAt := int64(eventIv)*iv + iv/2
	for i, e := range attack.Catalog() {
		sc := e.Build(eventAt)
		maps, err := lab.RunScenario(sc, int64(7000+i), int64(horizonIv)*iv)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		verdicts, err := det.ClassifySeries(maps)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		var preFlag, postFlag, preN, postN int
		firstDetect := -1
		for _, v := range verdicts {
			anom := v.Anomalous[0.01]
			if v.Index < eventIv {
				preN++
				if anom {
					preFlag++
				}
			} else {
				postN++
				if anom {
					postFlag++
					if firstDetect < 0 {
						firstDetect = v.Index
					}
				}
			}
		}
		fmt.Printf("\n%s [%s] (event at interval %d):\n", e.Name, e.Kind, eventIv)
		fmt.Printf("  pre-event false positives: %d/%d (%.2f%%)\n",
			preFlag, preN, 100*float64(preFlag)/float64(preN))
		postLabel := "post-event flagged:       "
		if e.Kind == "workload-change" {
			postLabel = "false alarms after change:"
		}
		fmt.Printf("  %s %d/%d (%.1f%%)\n",
			postLabel, postFlag, postN, 100*float64(postFlag)/float64(postN))
		switch {
		case firstDetect >= 0:
			fmt.Printf("  first alarm at interval %d (%d ms after the event)\n",
				firstDetect, int64(firstDetect-eventIv)*iv/1000)
		case e.Stealthy:
			fmt.Println("  never flagged — engineered to sit below the per-interval θ_p",
				"(the ensemble matrix covers this case: mhmreport -exp scenarios)")
		default:
			fmt.Println("  never flagged")
		}
		printDensityDip(verdicts, eventIv)
	}
	return nil
}

// printDensityDip summarizes the density series around the event.
func printDensityDip(verdicts []core.Verdict, eventIv int) {
	mean := func(lo, hi int) float64 {
		s, n := 0.0, 0
		for _, v := range verdicts {
			if v.Index >= lo && v.Index < hi {
				s += v.LogDensity
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	fmt.Printf("  mean log density: pre %.1f, post %.1f\n",
		mean(0, eventIv), mean(eventIv+1, eventIv+150))
}
