// Attackdetect runs all three of the paper's §5.3 attack scenarios —
// application addition, shellcode execution and a read-hijacking kernel
// rootkit — against one trained detector and prints per-scenario
// detection summaries.
package main

import (
	"fmt"
	"log"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/experiments"
	"github.com/memheatmap/mhm/internal/workload"
)

func main() {
	lab, err := experiments.NewLab(1, experiments.QuickScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training detector on normal system behaviour...")
	det, rep, err := lab.TrainDetector(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())

	const eventIv = 150
	iv := int64(10_000)
	eventAt := eventIv*iv + iv/2
	scenarios := []attack.Scenario{
		&attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: eventAt},
		&attack.Shellcode{Host: "bitcount", InjectAt: eventAt},
		&attack.RootkitLKM{LoadAt: eventAt},
	}

	for i, sc := range scenarios {
		maps, err := lab.RunScenario(sc, int64(7000+i), 300*iv)
		if err != nil {
			log.Fatal(err)
		}
		verdicts, err := det.ClassifySeries(maps)
		if err != nil {
			log.Fatal(err)
		}
		var preFlag, postFlag, preN, postN int
		firstDetect := -1
		for _, v := range verdicts {
			anom := v.Anomalous[0.01]
			if v.Index < eventIv {
				preN++
				if anom {
					preFlag++
				}
			} else {
				postN++
				if anom {
					postFlag++
					if firstDetect < 0 {
						firstDetect = v.Index
					}
				}
			}
		}
		fmt.Printf("\n%s (event at interval %d):\n", sc.Name(), eventIv)
		fmt.Printf("  pre-event false positives: %d/%d (%.2f%%)\n",
			preFlag, preN, 100*float64(preFlag)/float64(preN))
		fmt.Printf("  post-event flagged:        %d/%d (%.1f%%)\n",
			postFlag, postN, 100*float64(postFlag)/float64(postN))
		if firstDetect >= 0 {
			fmt.Printf("  first alarm at interval %d (%d ms after the event)\n",
				firstDetect, (firstDetect-eventIv)*10)
		} else {
			fmt.Println("  never detected")
		}
		printDensityDip(verdicts, eventIv)
	}
}

// printDensityDip summarizes the density series around the event.
func printDensityDip(verdicts []core.Verdict, eventIv int) {
	mean := func(lo, hi int) float64 {
		s, n := 0.0, 0
		for _, v := range verdicts {
			if v.Index >= lo && v.Index < hi {
				s += v.LogDensity
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	fmt.Printf("  mean log density: pre %.1f, post %.1f\n",
		mean(eventIv-100, eventIv), mean(eventIv+1, eventIv+150))
}
