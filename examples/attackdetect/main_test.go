package main

import "testing"

// TestRunSmoke sweeps the full scenario catalog at a small geometry;
// the example must stay wired to the registry — a scenario added to
// attack.Catalog() is automatically covered here.
func TestRunSmoke(t *testing.T) {
	if err := run(15, 40); err != nil {
		t.Fatal(err)
	}
}
