package main

import "testing"

// TestRunSmoke exercises all three views at a small geometry; the
// example must stay wired to the live lab and scenario registry APIs.
func TestRunSmoke(t *testing.T) {
	if err := run(999, 20, 50); err != nil {
		t.Fatal(err)
	}
}
