// Rootkit_vs_volume contrasts the paper's Figs. 9 and 10: a kernel
// rootkit that hijacks read(2) is loud while loading, invisible to
// traffic-volume monitoring afterwards — and still leaves a statistical
// trace in the memory heat maps, synchronized with the read-heavy sha
// task. A third view shows the ensemble's other evidence stream: the
// hook executes in module space, outside the syscall channel's fixed
// vocabulary, so every hijacked read lands in the "other" bucket that
// stays at zero on a clean system.
package main

import (
	"fmt"
	"log"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/experiments"
)

func main() {
	if err := run(999, 100, 200); err != nil {
		log.Fatal(err)
	}
}

// run trains a quick-scale detector and prints the three views; view 3
// replays the catalogued rootkit-lkm scenario with the event at
// interval eventIv of a horizonIv-interval run.
func run(seed int64, eventIv, horizonIv int) error {
	lab, err := experiments.NewLab(1, experiments.QuickScale())
	if err != nil {
		return err
	}
	fmt.Println("training MHM detector...")
	det, _, err := lab.TrainDetector(100)
	if err != nil {
		return err
	}

	fmt.Println("\n--- view 1: memory traffic volume (Fig. 9) ---")
	fig9, err := lab.Fig9(seed)
	if err != nil {
		return err
	}
	fmt.Printf("rootkit loaded at interval %d\n", fig9.LoadInterval)
	fmt.Printf("load spike:          %.2fx normal traffic  -> volume monitoring SEES the load\n", fig9.SpikeRatio)
	fmt.Printf("steady-state ratio:  %.4fx normal traffic  -> volume monitoring is BLIND afterwards\n", fig9.SteadyRatio)
	postFlags := 0
	for i := fig9.LoadInterval + 5; i < len(fig9.Flags); i++ {
		if fig9.Flags[i] {
			postFlags++
		}
	}
	fmt.Printf("volume alarms in steady state: %d\n", postFlags)

	fmt.Println("\n--- view 2: memory heat map detector (Fig. 10) ---")
	fig10, err := lab.Fig10(det, seed)
	if err != nil {
		return err
	}
	fmt.Printf("load interval log density: %.1f (pre-load mean %.1f) -> load detected\n",
		fig10.Verdicts[fig10.EventInterval].LogDensity, fig10.MeanDensity(50, fig10.EventInterval))
	fmt.Printf("steady-state alarms at θ1: %d of %d intervals\n",
		fig10.PostFlagged[0.01], fig10.PostCount)

	// The hijacked read delays sha (period 100 ms = 10 intervals); the
	// flagged intervals should concentrate on sha's schedule phases.
	hist := experiments.ShaPhaseHistogram(fig10, 0.01, 10)
	fmt.Println("alarms by schedule phase (interval mod 10; sha executes early in its period):")
	for phase, n := range hist {
		bar := ""
		for i := 0; i < n; i++ {
			bar += "#"
		}
		fmt.Printf("  phase %d: %3d %s\n", phase, n, bar)
	}

	fmt.Println("\n--- view 3: syscall-frequency channel (\"other\" bucket) ---")
	e, err := attack.Find("rootkit-lkm")
	if err != nil {
		return err
	}
	iv := lab.Scale.IntervalMicros
	eventAt := int64(eventIv)*iv + iv/2
	_, samples, err := lab.CollectObserved(e.Build(eventAt), seed+1, int64(horizonIv)*iv)
	if err != nil {
		return err
	}
	var pre, post float64
	var preN, postN int
	for i, s := range samples {
		other := s.Counts[len(s.Counts)-1] // trailing "other" bucket
		if i < eventIv {
			pre += other
			preN++
		} else {
			post += other
			postN++
		}
	}
	fmt.Printf("mean module-space (\"other\") executions per interval: pre %.3f, post %.3f\n",
		pre/float64(preN), post/float64(postN))
	fmt.Println("the hook runs outside the monitored service vocabulary, so the clean")
	fmt.Println("count is zero and any module-space execution is ensemble evidence.")

	fmt.Println("\nthe paper's point: aggregated volume hides the hijack; the heat map's")
	fmt.Println("composition — which cells are hot, when — does not.")
	return nil
}
