// Heatmap_explore renders Fig.-1-style ASCII memory heat maps of the
// simulated kernel .text segment at several granularities, shows how a
// kernel service's footprint appears in the map, and prints the
// eigenmemory decomposition of one interval.
package main

import (
	"fmt"
	"log"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

func collect(img *kernelmap.Image, gran uint64, micros int64, seed int64) []*heatmap.HeatMap {
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		log.Fatal(err)
	}
	s, err := securecore.NewSession(img, tasks, securecore.SessionConfig{
		Region:    heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: gran},
		NoiseSeed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	maps, err := s.Run(micros)
	if err != nil {
		log.Fatal(err)
	}
	return maps
}

func main() {
	img, err := kernelmap.NewImage(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic kernel: %d functions over %d bytes of .text\n\n",
		len(img.Functions()), img.Size)

	// One 10 ms interval at three granularities.
	for _, gran := range []uint64{2048, 8192, 32768} {
		maps := collect(img, gran, 60_000, 7)
		m := maps[len(maps)-1]
		fmt.Printf("δ = %d bytes → %d cells:\n%s\n", gran, len(m.Counts), m.Render(92))
	}

	// Where does one service land? Emit sys_read alone into a fresh map.
	svc, err := img.Service(kernelmap.SvcRead)
	if err != nil {
		log.Fatal(err)
	}
	solo, err := heatmap.New(heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 8192})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range svc.Emit(nil, 0, 50, nil) {
		solo.Record(a.Addr, a.Count)
	}
	fmt.Printf("footprint of 50 invocations of %s alone:\n%s\n", svc.Name, solo.Render(92))
	fmt.Println("hottest functions of sys_read:")
	for i, fn := range svc.TouchedFunctions() {
		if i == 5 {
			break
		}
		fmt.Printf("  %-16s %-8s %#x (%d bytes)\n", fn.Name, fn.Subsystem, fn.Addr, fn.Size)
	}

	// Eigenmemory decomposition of normal intervals.
	maps := collect(img, 2048, 1_000_000, 7)
	vectors, err := heatmap.PackVectors(maps)
	if err != nil {
		log.Fatal(err)
	}
	model, err := pca.Train(vectors, pca.Options{Components: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\neigenmemory decomposition of %d normal MHMs (top 8 components):\n", len(maps))
	for j, v := range model.Values {
		fmt.Printf("  u%d: eigenvalue share %.5f\n", j+1, v/model.TotalVariance)
	}
	w, err := model.Project(vectors[42])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval 42 reduced to weights: %v\n", compact(w))
	e, err := model.ReconstructionError(vectors[42])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstruction RMS error: %.2f accesses/cell\n", e)
}

func compact(w []float64) []string {
	out := make([]string, len(w))
	for i, x := range w {
		out[i] = fmt.Sprintf("%.0f", x)
	}
	return out
}
