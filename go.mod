module github.com/memheatmap/mhm

go 1.22
